package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"rnnheatmap/heatmap"
)

// optimalBody is the GET /optimal response shape used by these tests.
type optimalBody struct {
	Map      string `json:"map"`
	Version  uint64 `json:"version"`
	K        int    `json:"k"`
	Count    int    `json:"count"`
	Geometry string `json:"geometry"`
	Regions  []struct {
		Heat  float64 `json:"heat"`
		Point struct {
			X float64 `json:"x"`
			Y float64 `json:"y"`
		} `json:"point"`
		RNN    []int     `json:"rnn"`
		Area   float64   `json:"area"`
		Cells  int       `json:"cells"`
		Bounds *struct{} `json:"bounds"`
	} `json:"regions"`
}

// optimizeBody is the POST /optimize response shape used by these tests.
type optimizeBody struct {
	Map       string  `json:"map"`
	Version   uint64  `json:"version"`
	K         int     `json:"k"`
	Placed    int     `json:"placed"`
	Committed bool    `json:"committed"`
	TotalGain float64 `json:"total_gain"`
	Steps     []struct {
		Point struct {
			X float64 `json:"x"`
			Y float64 `json:"y"`
		} `json:"point"`
		Heat         float64 `json:"heat"`
		RNN          []int   `json:"rnn"`
		MaxHeatAfter float64 `json:"max_heat_after"`
	} `json:"steps"`
}

// TestOptimalEndpoint checks the unconstrained argmax answer against the
// map's own Optimal() on both route forms, plus the stats counter.
func TestOptimalEndpoint(t *testing.T) {
	t.Parallel()
	s := newTestServer(t, 1)
	want, err := s.def().state().m.Optimal()
	if err != nil {
		t.Fatalf("Optimal: %v", err)
	}
	for _, path := range []string{"/optimal", "/maps/default/optimal"} {
		rec := get(t, s, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, rec.Code, rec.Body.String())
		}
		var body optimalBody
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("decoding body: %v", err)
		}
		if body.K != 1 || body.Count != 1 || len(body.Regions) != 1 {
			t.Fatalf("GET %s: k=%d count=%d regions=%d, want 1/1/1", path, body.K, body.Count, len(body.Regions))
		}
		if body.Geometry != "slab" {
			t.Fatalf("geometry = %q, want slab on a default-built map", body.Geometry)
		}
		got := body.Regions[0]
		if got.Heat != want.Heat || got.Point.X != want.Point.X || got.Point.Y != want.Point.Y {
			t.Fatalf("GET %s: argmax (%v at %v,%v) != Map.Optimal (%v at %v)", path,
				got.Heat, got.Point.X, got.Point.Y, want.Heat, want.Point)
		}
		if got.Area <= 0 || got.Cells <= 0 || got.Bounds == nil {
			t.Fatalf("GET %s: missing geometry: area=%v cells=%d bounds=%v", path, got.Area, got.Cells, got.Bounds)
		}
	}
	var stats struct {
		Optimal struct {
			Queries int64 `json:"queries"`
		} `json:"optimal"`
	}
	if err := json.Unmarshal(get(t, s, "/stats").Body.Bytes(), &stats); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if stats.Optimal.Queries != 2 {
		t.Fatalf("optimal.queries = %d, want 2", stats.Optimal.Queries)
	}
}

// TestOptimalTopKEndpoint checks ordering and the constraint parameters.
func TestOptimalTopKEndpoint(t *testing.T) {
	t.Parallel()
	s := newTestServer(t, 1)
	rec := get(t, s, "/optimal?k=5")
	var body optimalBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	if body.Count != 5 || len(body.Regions) != 5 {
		t.Fatalf("k=5 answered %d regions", len(body.Regions))
	}
	for i := 1; i < len(body.Regions); i++ {
		if body.Regions[i].Heat > body.Regions[i-1].Heat {
			t.Fatalf("heat not non-increasing at %d", i)
		}
	}
	// A bbox covering nothing filters everything: count 0, not an error.
	rec = get(t, s, "/optimal?k=5&bbox=2000,2000,3000,3000")
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	if rec.Code != http.StatusOK || body.Count != 0 || len(body.Regions) != 0 {
		t.Fatalf("empty bbox: code=%d count=%d, want 200/0", rec.Code, body.Count)
	}
	// min_dist excludes regions near existing facilities. Use the small
	// hand-built map so k never caps the counts being compared.
	small, err := New(Config{Map: handMap(t)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rec = get(t, small, "/optimal?k=1000&min_dist=30")
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("min_dist query = %d: %s", rec.Code, rec.Body.String())
	}
	unfiltered := get(t, small, "/optimal?k=1000")
	var all optimalBody
	if err := json.Unmarshal(unfiltered.Body.Bytes(), &all); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	if body.Count >= all.Count {
		t.Fatalf("min_dist=30 dropped nothing (%d vs %d)", body.Count, all.Count)
	}
}

// TestOptimizeDryRunAndCommit drives the greedy optimizer end to end: a dry
// run leaves the served map untouched, a commit publishes the placements as
// one version bump.
func TestOptimizeDryRunAndCommit(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Map: handMap(t), Mutable: true, TileSize: 64, TileCacheSize: 16})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	baseFacilities := s.def().state().m.NumFacilities()

	rec := do(t, s, http.MethodPost, "/optimize?k=3", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /optimize = %d: %s", rec.Code, rec.Body.String())
	}
	var dry optimizeBody
	if err := json.Unmarshal(rec.Body.Bytes(), &dry); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	if dry.Committed || dry.Placed != 3 || len(dry.Steps) != 3 {
		t.Fatalf("dry run: committed=%v placed=%d", dry.Committed, dry.Placed)
	}
	if dry.Version != 1 || s.Version() != 1 {
		t.Fatalf("dry run bumped the version: body %d, server %d", dry.Version, s.Version())
	}
	if got := s.def().state().m.NumFacilities(); got != baseFacilities {
		t.Fatalf("dry run changed facilities: %d -> %d", baseFacilities, got)
	}
	gain := 0.0
	for i, step := range dry.Steps {
		if step.Heat <= 0 {
			t.Fatalf("step %d has non-positive gain %v", i, step.Heat)
		}
		gain += step.Heat
	}
	if gain != dry.TotalGain {
		t.Fatalf("total_gain %v != sum of step heats %v", dry.TotalGain, gain)
	}

	// Commit: same deterministic greedy run, now published.
	rec = do(t, s, http.MethodPost, "/optimize?k=3&commit=true", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /optimize commit = %d: %s", rec.Code, rec.Body.String())
	}
	var committed optimizeBody
	if err := json.Unmarshal(rec.Body.Bytes(), &committed); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	if !committed.Committed || committed.Version != 2 || s.Version() != 2 {
		t.Fatalf("commit: committed=%v version=%d server=%d, want true/2/2", committed.Committed, committed.Version, s.Version())
	}
	if got := s.def().state().m.NumFacilities(); got != baseFacilities+3 {
		t.Fatalf("commit placed %d facilities, want 3", got-baseFacilities)
	}
	// The committed sequence equals the dry run's (deterministic greedy).
	for i := range dry.Steps {
		if dry.Steps[i].Point != committed.Steps[i].Point {
			t.Fatalf("step %d: dry %v != committed %v", i, dry.Steps[i].Point, committed.Steps[i].Point)
		}
	}
}

// TestOptimizeRequiresMutableForCommit: dry runs are read-side analytics and
// work everywhere; commit is a mutation and needs -mutable.
func TestOptimizeRequiresMutableForCommit(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Map: handMap(t)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if rec := do(t, s, http.MethodPost, "/optimize?k=1", ""); rec.Code != http.StatusOK {
		t.Fatalf("dry run on read-only server = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, s, http.MethodPost, "/optimize?k=1&commit=true", ""); rec.Code != http.StatusForbidden {
		t.Fatalf("commit on read-only server = %d, want 403", rec.Code)
	}
}

// TestDegenerateMapEndpoints drives a served map into the empty-arrangement
// state (a facility opened on top of every client) and checks every
// analytics endpoint answers explicitly instead of fabricating data.
func TestDegenerateMapEndpoints(t *testing.T) {
	t.Parallel()
	m, err := heatmap.Build(heatmap.Config{
		Clients:    []heatmap.Point{heatmap.Pt(5, 5), heatmap.Pt(9, 2)},
		Facilities: []heatmap.Point{heatmap.Pt(0, 0)},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s, err := New(Config{Map: m, Mutable: true, TileSize: 64, TileCacheSize: 16})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rec := do(t, s, http.MethodPost, "/facilities", `{"points":[{"x":5,"y":5},{"x":9,"y":2}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /facilities = %d: %s", rec.Code, rec.Body.String())
	}
	if n := s.def().state().m.NumRegions(); n != 0 {
		t.Fatalf("map still has %d regions", n)
	}

	// /optimal and /optimize: 409, there is no optimal location.
	if rec := get(t, s, "/optimal"); rec.Code != http.StatusConflict {
		t.Fatalf("GET /optimal on empty arrangement = %d, want 409: %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, s, http.MethodPost, "/optimize?k=2", ""); rec.Code != http.StatusConflict {
		t.Fatalf("POST /optimize on empty arrangement = %d, want 409: %s", rec.Code, rec.Body.String())
	}
	// /topk: explicit empty list with count 0.
	rec = get(t, s, "/topk?k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /topk on empty arrangement = %d: %s", rec.Code, rec.Body.String())
	}
	var topk struct {
		Count   int               `json:"count"`
		Regions []json.RawMessage `json:"regions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &topk); err != nil {
		t.Fatalf("decoding topk: %v", err)
	}
	if topk.Count != 0 || len(topk.Regions) != 0 {
		t.Fatalf("topk on empty arrangement: count=%d regions=%d, want explicit empty", topk.Count, len(topk.Regions))
	}
	// /histogram: empty edges and counts, not an error.
	rec = get(t, s, "/histogram")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /histogram on empty arrangement = %d", rec.Code)
	}
	// /heat still answers (the empty-set heat everywhere).
	if rec := get(t, s, "/heat?x=5&y=5"); rec.Code != http.StatusOK {
		t.Fatalf("GET /heat on empty arrangement = %d", rec.Code)
	}
}

// TestTopKClampsToMaxRegions pins the k > NumRegions behavior: clamped to
// the available regions with the count made explicit, never an error and
// never padding.
func TestTopKClampsToMaxRegions(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Map: handMap(t), MaxRegions: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rec := get(t, s, "/topk?k=100000")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /topk?k=100000 = %d", rec.Code)
	}
	var body struct {
		K       int               `json:"k"`
		Count   int               `json:"count"`
		Regions []json.RawMessage `json:"regions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	if body.K != 4 || body.Count != len(body.Regions) || body.Count > 4 {
		t.Fatalf("k=%d count=%d regions=%d, want k clamped to 4 and an honest count", body.K, body.Count, len(body.Regions))
	}
}

// TestAnalyticsParamValidation is the satellite bugfix matrix: every
// malformed query parameter across the analytics endpoints must answer 400
// with a JSON error body — not 200 with garbage, not 500.
func TestAnalyticsParamValidation(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Map: handMap(t), Mutable: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cases := []struct {
		method, path string
	}{
		// /topk: k must be a positive integer.
		{http.MethodGet, "/topk?k=0"},
		{http.MethodGet, "/topk?k=-3"},
		{http.MethodGet, "/topk?k=abc"},
		{http.MethodGet, "/topk?k=2.5"},
		{http.MethodGet, "/topk?k=1e3"},
		// /regions: min must be present and finite.
		{http.MethodGet, "/regions"},
		{http.MethodGet, "/regions?min=NaN"},
		{http.MethodGet, "/regions?min=Inf"},
		{http.MethodGet, "/regions?min=-Inf"},
		{http.MethodGet, "/regions?min=abc"},
		// /histogram: bins must be an integer in [1, 1000].
		{http.MethodGet, "/histogram?bins=0"},
		{http.MethodGet, "/histogram?bins=-1"},
		{http.MethodGet, "/histogram?bins=1001"},
		{http.MethodGet, "/histogram?bins=ten"},
		{http.MethodGet, "/histogram?bins=3.5"},
		// /optimal: k positive, constraints finite and non-negative, bbox
		// well-formed.
		{http.MethodGet, "/optimal?k=0"},
		{http.MethodGet, "/optimal?k=junk"},
		{http.MethodGet, "/optimal?min_area=NaN"},
		{http.MethodGet, "/optimal?min_area=-1"},
		{http.MethodGet, "/optimal?min_dist=Inf"},
		{http.MethodGet, "/optimal?min_dist=x"},
		{http.MethodGet, "/optimal?bbox=1,2,3"},
		{http.MethodGet, "/optimal?bbox=1,2,3,4,5"},
		{http.MethodGet, "/optimal?bbox=a,b,c,d"},
		{http.MethodGet, "/optimal?bbox=5,5,1,9"},
		{http.MethodGet, "/optimal?bbox=1,2,3,NaN"},
		// /optimize: same constraint rules plus k cap and boolean commit.
		{http.MethodPost, "/optimize?k=0"},
		{http.MethodPost, "/optimize?k=65"},
		{http.MethodPost, "/optimize?commit=maybe"},
		{http.MethodPost, "/optimize?min_dist=-2"},
		{http.MethodPost, "/optimize?bbox=oops"},
	}
	for _, tc := range cases {
		t.Run(tc.method+" "+tc.path, func(t *testing.T) {
			rec := do(t, s, tc.method, tc.path, "")
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("%s %s = %d, want 400 (body %s)", tc.method, tc.path, rec.Code, rec.Body.String())
			}
			var body map[string]string
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("%s %s: non-JSON error body %q", tc.method, tc.path, rec.Body.String())
			}
			if body["error"] == "" {
				t.Fatalf("%s %s: missing error field in %q", tc.method, tc.path, rec.Body.String())
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("%s %s: Content-Type %q", tc.method, tc.path, ct)
			}
		})
	}

	// The valid edges of the same parameters stay accepted.
	for _, path := range []string{
		"/topk?k=1",
		"/regions?min=0",
		"/histogram?bins=1",
		"/histogram?bins=1000",
		"/optimal?k=1&min_area=0&min_dist=0",
		"/optimal?bbox=0,0,100,100",
	} {
		if rec := get(t, s, path); rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200: %s", path, rec.Code, rec.Body.String())
		}
	}
}
