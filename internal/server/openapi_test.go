package server

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestOpenAPIMatchesRoutes is the API contract check: every route the
// server registers must be documented in docs/openapi.yaml, and every path
// the spec documents must be registered — in both directions, by method.
// The spec is deliberately simple enough to walk with two regexes (path
// keys at two-space indent, method keys at four), so no YAML dependency is
// needed.
func TestOpenAPIMatchesRoutes(t *testing.T) {
	t.Parallel()
	spec := readSpecRoutes(t, filepath.Join("..", "..", "docs", "openapi.yaml"))

	s := newTestServer(t, 1)
	served := map[string]bool{}
	for _, r := range s.Routes() {
		served[r[0]+" /"+APIVersion+r[1]] = true
	}
	if len(served) == 0 {
		t.Fatal("Server.Routes() is empty")
	}

	for key := range served {
		if !spec[key] {
			t.Errorf("route %q is served but missing from docs/openapi.yaml", key)
		}
	}
	for key := range spec {
		if !served[key] {
			t.Errorf("path %q is documented in docs/openapi.yaml but not served", key)
		}
	}
	if t.Failed() {
		var a, b []string
		for k := range served {
			a = append(a, k)
		}
		for k := range spec {
			b = append(b, k)
		}
		sort.Strings(a)
		sort.Strings(b)
		t.Logf("served:\n  %s", strings.Join(a, "\n  "))
		t.Logf("spec:\n  %s", strings.Join(b, "\n  "))
	}
}

// readSpecRoutes extracts "METHOD /v1/path" keys from the OpenAPI file.
func readSpecRoutes(t *testing.T, path string) map[string]bool {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("opening spec: %v", err)
	}
	defer f.Close()

	pathRE := regexp.MustCompile(`^  (/v1[^\s:]*):\s*$`)
	methodRE := regexp.MustCompile(`^    (get|post|put|delete|patch):\s*$`)
	routes := map[string]bool{}
	current := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if m := pathRE.FindStringSubmatch(line); m != nil {
			current = m[1]
			continue
		}
		if m := methodRE.FindStringSubmatch(line); m != nil {
			if current == "" {
				t.Fatalf("method %q before any path in spec", m[1])
			}
			key := strings.ToUpper(m[1]) + " " + current
			if routes[key] {
				t.Fatalf("duplicate spec entry %q", key)
			}
			routes[key] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading spec: %v", err)
	}
	if len(routes) == 0 {
		t.Fatal("no /v1 routes found in docs/openapi.yaml")
	}
	return routes
}
