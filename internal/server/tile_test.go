package server

import (
	"testing"

	"rnnheatmap/internal/geom"
)

func TestGridWorldIsCenteredSquare(t *testing.T) {
	t.Parallel()
	g := newGrid(geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 40})
	if w, h := g.world.Width(), g.world.Height(); w != h || w != 100 {
		t.Fatalf("world = %v, want a 100x100 square", g.world)
	}
	if c := g.world.Center(); c.X != 50 || c.Y != 20 {
		t.Fatalf("world center = %v, want (50, 20)", c)
	}
}

func TestGridTileBounds(t *testing.T) {
	t.Parallel()
	g := newGrid(geom.Rect{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8})
	if got := g.tileBounds(0, 0, 0); got != g.world {
		t.Fatalf("tile 0/0/0 = %v, want the whole world %v", got, g.world)
	}
	// Zoom 1: tile (0, 0) is the north-west quadrant.
	nw := g.tileBounds(1, 0, 0)
	want := geom.Rect{MinX: 0, MinY: 4, MaxX: 4, MaxY: 8}
	if nw != want {
		t.Fatalf("tile 1/0/0 = %v, want %v", nw, want)
	}
	// The four zoom-1 tiles partition the world exactly.
	se := g.tileBounds(1, 1, 1)
	if se != (geom.Rect{MinX: 4, MinY: 0, MaxX: 8, MaxY: 4}) {
		t.Fatalf("tile 1/1/1 = %v, want the south-east quadrant", se)
	}
}

func TestGridValid(t *testing.T) {
	t.Parallel()
	g := newGrid(geom.Rect{MaxX: 1, MaxY: 1})
	cases := []struct {
		z, x, y int
		want    bool
	}{
		{0, 0, 0, true},
		{0, 1, 0, false},
		{1, 1, 1, true},
		{1, 2, 0, false},
		{-1, 0, 0, false},
		{MaxZoom, 0, 0, true},
		{MaxZoom + 1, 0, 0, false},
	}
	for _, tc := range cases {
		if got := g.valid(tc.z, tc.x, tc.y); got != tc.want {
			t.Errorf("valid(%d, %d, %d) = %v, want %v", tc.z, tc.x, tc.y, got, tc.want)
		}
	}
}
