package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"rnnheatmap/heatmap"
	"rnnheatmap/internal/snapshot"
)

// DefaultMapName is the name of the map every legacy (un-prefixed) endpoint
// resolves to. It always exists and cannot be deleted.
const DefaultMapName = "default"

// mapInstance is one tenant of the registry: a named map with its own
// atomically swapped snapshot, writer lock, version-keyed tile cache and —
// when persistence is enabled on a mutable server — write-ahead log.
// Readers of different maps never contend; writers of different maps only
// share the registry's read lock.
type mapInstance struct {
	name    string
	cur     atomic.Pointer[mapState]
	writeMu sync.Mutex // serializes ApplyDelta + WAL append + swap + cache migration
	cache   *tileCache
	renders atomic.Int64 // tile renders across all of this map's versions
	wal     *snapshot.WAL
	// ing is the map's coalescing ingestion writer (mutable servers only):
	// POST /mutations batches queue here and are group-committed. nil on
	// read-only servers.
	ing *ingester
	// dirty is set when the in-memory map has state (mutations, or a fresh
	// build) not yet folded into the on-disk snapshot.
	dirty atomic.Bool
	// snapFormat is the format of the map's last loaded or saved snapshot
	// (heatmap.SnapshotV1 or SnapshotV2 as an int32; 0 = never persisted).
	snapFormat atomic.Int32
	// Optimal-location counters, surfaced in /stats: GET /optimal queries,
	// POST /optimize runs (dry or committed), and facilities placed by them.
	optimalQueries atomic.Int64
	optimizeRuns   atomic.Int64
	placements     atomic.Int64
}

// state returns the instance's current map snapshot.
func (inst *mapInstance) state() *mapState { return inst.cur.Load() }

// snapshotFormat names the instance's on-disk snapshot format for /stats:
// "v1", "v2", or "" when the map has never been loaded from or saved to disk.
func (inst *mapInstance) snapshotFormat() string {
	switch heatmap.SnapshotFormat(inst.snapFormat.Load()) {
	case heatmap.SnapshotV1:
		return "v1"
	case heatmap.SnapshotV2:
		return "v2"
	default:
		return ""
	}
}

// mapNameRE validates tenant names: they appear in URLs and file names, so
// they are restricted to a safe alphabet.
var mapNameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_-]{0,63}$`)

// errMapExists and errRegistryFull distinguish the create conflicts from
// validation errors.
var (
	errMapExists    = errors.New("map already exists")
	errRegistryFull = errors.New("registry is full")
)

// reserveName claims a map name for an in-flight create. It fails when the
// name is registered or already reserved, or when registered maps plus
// in-flight builds reach the registry cap. releaseName undoes it; the
// eventual register (which inserts into s.maps) is a separate step, so the
// reservation must outlive it — handleCreateMap releases on all paths after
// register returns.
func (s *Server) reserveName(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.maps[name]; ok {
		return fmt.Errorf("%w: %q", errMapExists, name)
	}
	if _, ok := s.creating[name]; ok {
		return fmt.Errorf("%w: %q", errMapExists, name)
	}
	if len(s.maps)+len(s.creating) >= s.maxMaps {
		return fmt.Errorf("%w (%d maps)", errRegistryFull, s.maxMaps)
	}
	s.creating[name] = struct{}{}
	return nil
}

func (s *Server) releaseName(name string) {
	s.mu.Lock()
	delete(s.creating, name)
	s.mu.Unlock()
}

// lookup returns the named instance, or nil.
func (s *Server) lookup(name string) *mapInstance {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.maps[name]
}

// def returns the default map's instance; it exists for the lifetime of the
// server (New fails without one and DELETE refuses to remove it).
func (s *Server) def() *mapInstance { return s.lookup(DefaultMapName) }

// instances returns every registered instance, name-sorted for stable
// listings.
func (s *Server) instances() []*mapInstance {
	s.mu.RLock()
	out := make([]*mapInstance, 0, len(s.maps))
	for _, inst := range s.maps {
		out = append(out, inst)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// register builds the instance for m at the given version and adds it to
// the registry. The name is reserved under the registry lock *before* any
// disk side effect, so a losing concurrent create can never overwrite the
// winner's snapshot or WAL; the instance's writer lock is held until its
// persistence is attached, so a mutation racing the registration cannot
// slip past the log.
func (s *Server) register(name string, m *heatmap.Map, version uint64, persisted bool, preWAL *snapshot.WAL) (*mapInstance, error) {
	st, err := newMapState(m, version)
	if err != nil {
		if preWAL != nil {
			preWAL.Close()
		}
		return nil, err
	}
	inst := &mapInstance{name: name, cache: newTileCache(s.tileCacheSize)}
	inst.cur.Store(st)
	if s.mutable {
		// The ingestion writer exists before the instance is reachable, so a
		// POST /mutations racing the registration always finds it; its first
		// commit blocks on writeMu until persistence is attached below.
		inst.ing = newIngester(s, inst)
	}
	inst.writeMu.Lock()
	// fail tears the half-built instance down. The writer lock must be
	// released before stopping the ingester: its writer may already be
	// blocked on that lock in a commit (only possible on the
	// attachPersistence path, after the name was briefly registered), and
	// shutdown waits for it.
	fail := func(err error) (*mapInstance, error) {
		inst.writeMu.Unlock()
		if inst.ing != nil {
			inst.ing.shutdown()
		}
		return nil, err
	}
	s.mu.Lock()
	if _, ok := s.maps[name]; ok {
		s.mu.Unlock()
		if preWAL != nil {
			preWAL.Close()
		}
		return fail(fmt.Errorf("%w: %q", errMapExists, name))
	}
	if len(s.maps) >= s.maxMaps {
		s.mu.Unlock()
		if preWAL != nil {
			preWAL.Close()
		}
		return fail(fmt.Errorf("%w (%d maps)", errRegistryFull, s.maxMaps))
	}
	s.maps[name] = inst
	s.mu.Unlock()
	if err := s.attachPersistence(inst, persisted, preWAL); err != nil {
		s.mu.Lock()
		delete(s.maps, name)
		s.mu.Unlock()
		return fail(err)
	}
	inst.writeMu.Unlock()
	return inst, nil
}

// attachPersistence wires the instance's on-disk state: its WAL (kept open
// for appending on mutable servers) and, for maps not already persisted at
// this exact state, the initial snapshot. preWAL, when non-nil, is an
// already-open handle handed over by the load path so a large log is not
// parsed twice at startup. A fresh (not loaded) map must not inherit a
// previous incarnation's log, whatever the server's mutability — a later
// -load would replay foreign deltas into the wrong map — so the leftover
// WAL is reset (mutable) or removed (read-only). The caller holds
// inst.writeMu.
func (s *Server) attachPersistence(inst *mapInstance, persisted bool, preWAL *snapshot.WAL) error {
	if s.snapshotDir == "" {
		if preWAL != nil {
			preWAL.Close()
		}
		return nil
	}
	walPath := snapshot.WALPath(s.snapshotDir, inst.name)
	if s.mutable {
		wal := preWAL
		if wal == nil {
			opened, records, err := snapshot.OpenWAL(walPath)
			if err != nil {
				return err
			}
			if !persisted && len(records) > 0 {
				if err := opened.Reset(); err != nil {
					opened.Close()
					return err
				}
			}
			wal = opened
		}
		inst.wal = wal
	} else {
		if preWAL != nil {
			preWAL.Close()
		}
		if !persisted {
			if err := os.Remove(walPath); err != nil && !errors.Is(err, os.ErrNotExist) {
				return err
			}
		}
	}
	if !persisted {
		if err := s.saveInstanceLocked(inst); err != nil {
			if inst.wal != nil {
				inst.wal.Close()
				inst.wal = nil
			}
			return err
		}
	}
	return nil
}

// loadMaps restores every *.snap in the snapshot directory, replaying each
// map's WAL (if any) on top so a mutable server resumes exactly where it
// crashed.
func (s *Server) loadMaps() error {
	entries, err := os.ReadDir(s.snapshotDir)
	if err != nil {
		return fmt.Errorf("server: reading snapshot dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".snap") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".snap")
		if !mapNameRE.MatchString(name) {
			return fmt.Errorf("server: snapshot file %q does not name a valid map", e.Name())
		}
		// OpenSnapshot serves format-v2 files off an mmap view (queries,
		// tiles and metadata with no decode step) and falls back to the heap
		// decode for format-v1 files.
		m, version, err := heatmap.OpenSnapshot(snapshot.MapPath(s.snapshotDir, name))
		if err != nil {
			return fmt.Errorf("server: loading map %q: %w", name, err)
		}
		loadedFormat := heatmap.SnapshotV2
		if m.Residency() == "heap" {
			loadedFormat = heatmap.SnapshotV1
		}
		m, version, replayed, wal, err := s.replayWAL(name, m, version)
		if err != nil {
			return fmt.Errorf("server: replaying WAL of map %q: %w", name, err)
		}
		inst, err := s.register(name, m, version, true, wal)
		if err != nil {
			return fmt.Errorf("server: registering loaded map %q: %w", name, err)
		}
		inst.snapFormat.Store(int32(loadedFormat))
		if replayed > 0 {
			// The snapshot on disk lags the replayed state; mark dirty so the
			// next save compacts snapshot+WAL.
			inst.dirty.Store(true)
		}
	}
	return nil
}

// replayWAL applies the records of name's WAL that postdate the snapshot.
// Replay happens even on a read-only server (the log is state, not an
// optional extra). On a mutable server the open handle is returned for
// register to adopt, so the log is parsed exactly once at startup; on a
// read-only server it is closed and nil is returned.
func (s *Server) replayWAL(name string, m *heatmap.Map, version uint64) (*heatmap.Map, uint64, int, *snapshot.WAL, error) {
	path := snapshot.WALPath(s.snapshotDir, name)
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		return m, version, 0, nil, nil
	}
	wal, records, err := snapshot.OpenWAL(path)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	keep := s.mutable
	if !keep {
		wal.Close()
		wal = nil
	}
	fail := func(err error) (*heatmap.Map, uint64, int, *snapshot.WAL, error) {
		if wal != nil {
			wal.Close()
		}
		return nil, 0, 0, nil, err
	}
	replayed := 0
	for _, rec := range records {
		if rec.Version <= version {
			continue // already folded into the snapshot
		}
		if rec.Version != version+1 {
			return fail(fmt.Errorf("record jumps from version %d to %d: log diverges from snapshot", version, rec.Version))
		}
		ops := rec.Ops()
		ds := make([]heatmap.Delta, len(ops))
		for i, op := range ops {
			ds[i] = heatmap.Delta{
				AddClients:       op.AddClients,
				RemoveClients:    op.RemoveClients,
				AddFacilities:    op.AddFacilities,
				RemoveFacilities: op.RemoveFacilities,
			}
		}
		next, _, err := m.ApplyDeltaBatch(ds)
		if err != nil {
			return fail(fmt.Errorf("re-applying record for version %d: %w", rec.Version, err))
		}
		m = next
		version = rec.Version
		replayed++
	}
	return m, version, replayed, wal, nil
}

// saveInstanceLocked snapshots the instance's current state to disk and
// resets its WAL (everything the log held is now in the snapshot). The
// caller must ensure no concurrent mutation: hold inst.writeMu, or be the
// only owner (registration).
func (s *Server) saveInstanceLocked(inst *mapInstance) error {
	st := inst.state()
	if err := st.m.SaveSnapshotFormat(snapshot.MapPath(s.snapshotDir, inst.name), st.version, s.snapFormat); err != nil {
		return err
	}
	inst.snapFormat.Store(int32(s.snapFormat))
	if inst.wal != nil {
		if err := inst.wal.Reset(); err != nil {
			return err
		}
	}
	inst.dirty.Store(false)
	return nil
}

// SaveAll snapshots every map whose state is newer than its on-disk
// snapshot. It is a no-op without a snapshot directory. heatmapd calls it on
// the -save-every ticker and during shutdown.
func (s *Server) SaveAll() error {
	if s.snapshotDir == "" {
		return nil
	}
	var firstErr error
	for _, inst := range s.instances() {
		if !inst.dirty.Load() {
			continue
		}
		inst.writeMu.Lock()
		var err error
		// Re-check membership under the writer lock: a concurrent DELETE
		// removes the instance and then deletes its files under this same
		// lock, and a save racing past that would resurrect them.
		if s.lookup(inst.name) == inst {
			err = s.saveInstanceLocked(inst)
		}
		inst.writeMu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("server: saving map %q: %w", inst.name, err)
		}
	}
	return firstErr
}

// Close persists all dirty maps and closes their WALs. The server must not
// serve requests afterwards.
func (s *Server) Close() error {
	// Stop the cluster loops first: a replica sync applying records (or a
	// bootstrap renaming snapshot files) must not race the WAL teardown.
	if s.cluster != nil {
		s.cluster.stop()
	}
	err := s.SaveAll()
	for _, inst := range s.instances() {
		// Stop the ingestion writer before taking the writer lock (it may be
		// mid group-commit holding it); queued batches drain with 503.
		if inst.ing != nil {
			inst.ing.shutdown()
		}
		// The writer lock serializes against a straggling autosave or
		// mutation still holding the WAL; closing the file under its feet
		// would fail its Reset/Append with "file already closed".
		inst.writeMu.Lock()
		if inst.wal != nil {
			if cerr := inst.wal.Close(); cerr != nil && err == nil {
				err = cerr
			}
			inst.wal = nil
		}
		inst.writeMu.Unlock()
	}
	return err
}

// mapInfo is one entry of the GET /maps listing.
type mapInfo struct {
	Name       string  `json:"name"`
	Version    uint64  `json:"version"`
	Measure    string  `json:"measure"`
	Clients    int     `json:"clients"`
	Facilities int     `json:"facilities"`
	Regions    int     `json:"regions"`
	MaxHeat    float64 `json:"max_heat"`
}

func infoOf(inst *mapInstance) mapInfo {
	st := inst.state()
	maxHeat, _ := st.m.MaxHeat()
	return mapInfo{
		Name:       inst.name,
		Version:    st.version,
		Measure:    st.m.MeasureName(),
		Clients:    st.m.NumClients(),
		Facilities: st.m.NumFacilities(),
		Regions:    st.m.NumRegions(),
		MaxHeat:    maxHeat,
	}
}

func (s *Server) handleListMaps(w http.ResponseWriter, r *http.Request) {
	insts := s.instances()
	infos := make([]mapInfo, len(insts))
	for i, inst := range insts {
		infos[i] = infoOf(inst)
	}
	writeJSON(w, http.StatusOK, map[string]any{"maps": infos})
}

// createMapRequest is the POST /maps payload: a tenant name plus the client
// and facility sets to build it from. The measure is always size — the
// measures with per-index context (weighted, capacity, connectivity) cannot
// survive mutations or a snapshot-less restart of the creating client, so
// the HTTP surface does not offer them.
type createMapRequest struct {
	Name       string      `json:"name"`
	Clients    []pointJSON `json:"clients"`
	Facilities []pointJSON `json:"facilities"`
	Metric     string      `json:"metric,omitempty"`
	Workers    int         `json:"workers,omitempty"`
}

func (s *Server) handleCreateMap(w http.ResponseWriter, r *http.Request) {
	var req createMapRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return
	}
	if !mapNameRE.MatchString(req.Name) {
		writeError(w, http.StatusBadRequest, "map name must match %s", mapNameRE)
		return
	}
	// In cluster mode the requested name decides the owner; a non-owner
	// redirects (307 preserves method and body) so the map is built, logged
	// and persisted on the node that will serve its writes.
	if s.cluster != nil && s.cluster.routeCreate(req.Name, w, r) {
		return
	}
	if len(req.Clients) == 0 || len(req.Facilities) == 0 {
		writeError(w, http.StatusBadRequest, "a map needs at least one client and one facility")
		return
	}
	if n := len(req.Clients) + len(req.Facilities); n > s.maxMapPoints {
		writeError(w, http.StatusBadRequest, "%d points exceed the per-map limit of %d", n, s.maxMapPoints)
		return
	}
	metric := heatmap.L2
	if req.Metric != "" {
		var err error
		if metric, err = heatmap.ParseMetric(req.Metric); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if req.Workers < 0 || req.Workers > 256 {
		writeError(w, http.StatusBadRequest, "workers %d out of range [0, 256]", req.Workers)
		return
	}
	// Reserve the name before the expensive Build: concurrent same-name
	// creates (and creates against a full registry) are refused immediately
	// instead of each paying a multi-second build that register would then
	// discard.
	if err := s.reserveName(req.Name); err != nil {
		switch {
		case errors.Is(err, errMapExists):
			writeErrorCode(w, http.StatusConflict, codeMapExists, "map %q already exists or is being created", req.Name)
		default:
			writeErrorCode(w, http.StatusTooManyRequests, codeRegistryFull, "%v", err)
		}
		return
	}
	defer s.releaseName(req.Name)
	m, err := heatmap.Build(heatmap.Config{
		Clients:    toPoints(req.Clients),
		Facilities: toPoints(req.Facilities),
		Metric:     metric,
		Workers:    req.Workers,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "building map: %v", err)
		return
	}
	inst, err := s.register(req.Name, m, 1, false, nil)
	switch {
	case errors.Is(err, errMapExists):
		writeErrorCode(w, http.StatusConflict, codeMapExists, "map %q already exists", req.Name)
		return
	case errors.Is(err, errRegistryFull):
		writeErrorCode(w, http.StatusTooManyRequests, codeRegistryFull, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "registering map: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, infoOf(inst))
}

func (s *Server) handleGetMap(inst *mapInstance, w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, infoOf(inst))
}

func (s *Server) handleDeleteMap(inst *mapInstance, w http.ResponseWriter, r *http.Request) {
	if inst.name == DefaultMapName {
		writeError(w, http.StatusForbidden, "the default map cannot be deleted")
		return
	}
	s.mu.Lock()
	if s.maps[inst.name] != inst {
		// Already deleted — and possibly re-created under the same name by a
		// concurrent POST /maps; that newer instance is not ours to remove.
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no map named %q", inst.name)
		return
	}
	delete(s.maps, inst.name)
	s.mu.Unlock()
	// Stop the ingestion writer first, and before taking the writer lock: it
	// may be mid group-commit holding that lock. With the name already
	// removed, its membership re-check 404s everything still queued.
	if inst.ing != nil {
		inst.ing.shutdown()
	}
	// Serialize against an in-flight mutation before tearing down the WAL.
	inst.writeMu.Lock()
	defer inst.writeMu.Unlock()
	if inst.wal != nil {
		inst.wal.Close()
		inst.wal = nil
	}
	// Remove the files only while the name is unclaimed, holding the
	// registry lock across check + removal: persistence files are only ever
	// written by an instance that is already registered (register inserts
	// the name under s.mu before attachPersistence runs), so blocking
	// insertion here guarantees a concurrent re-creation's fresh snapshot
	// and WAL cannot appear mid-removal.
	if s.snapshotDir != "" {
		s.mu.Lock()
		if _, reclaimed := s.maps[inst.name]; !reclaimed {
			_ = os.Remove(snapshot.MapPath(s.snapshotDir, inst.name))
			_ = os.Remove(snapshot.WALPath(s.snapshotDir, inst.name))
		}
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": inst.name})
}

// handleSaveMap force-persists one map (POST /maps/{map}/snapshot),
// regardless of the autosave cadence.
func (s *Server) handleSaveMap(inst *mapInstance, w http.ResponseWriter, r *http.Request) {
	if s.snapshotDir == "" {
		writeError(w, http.StatusForbidden, "server has no snapshot directory; start heatmapd with -snapshot-dir")
		return
	}
	inst.writeMu.Lock()
	// Re-check membership under the writer lock (as SaveAll does): a
	// concurrent DELETE removes the files under this same lock, and a save
	// racing past it would resurrect the deleted map on disk.
	if s.lookup(inst.name) != inst {
		inst.writeMu.Unlock()
		writeError(w, http.StatusNotFound, "no map named %q", inst.name)
		return
	}
	// Capture the version while still holding the lock: it is the version
	// saveInstanceLocked actually wrote, not whatever a subsequent mutation
	// moves the map to.
	saved := inst.state().version
	err := s.saveInstanceLocked(inst)
	inst.writeMu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "saving map: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"saved":   inst.name,
		"version": saved,
		"path":    filepath.Base(snapshot.MapPath(s.snapshotDir, inst.name)),
	})
}
