package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

// The mutable-server soak test: N goroutines of mixed /heat, /heat/batch,
// tile and /topk reads interleaved with a serialized mutation stream, run
// under -race by the CI short suite. Assertions:
//
//  1. every response succeeds;
//  2. versions are monotone — globally for /stats polls and per-tile via the
//     version-keyed ETags;
//  3. every read is consistent with some published map state: a read
//     sandwiched between two /stats polls reporting the same version must
//     equal the ground-truth response the writer recorded for that version
//     (readers never see a torn or intermediate state);
//  4. after the writer finishes, every endpoint converges byte-for-byte to
//     the final version's ground truth.

// soakTruth is the ground-truth response set for one published version.
type soakTruth struct {
	heat  []byte
	batch []byte
	topk  []byte
	tile  []byte
	etag  string
}

const (
	soakHeatPath  = "/heat?x=10&y=10"
	soakBatchBody = `{"points":[{"x":10,"y":10},{"x":50,"y":50},{"x":90,"y":10},{"x":-3,"y":200}]}`
	soakTopKPath  = "/topk?k=3"
	soakTilePath  = "/tiles/2/0/3.png"
)

// captureTruth snapshots every read endpoint at the server's current state.
// Only the writer calls it, between its own mutations, so the state cannot
// move underneath it.
func captureTruth(t *testing.T, s *Server) soakTruth {
	t.Helper()
	heat := do(t, s, http.MethodGet, soakHeatPath, "")
	batch := do(t, s, http.MethodPost, "/heat/batch", soakBatchBody)
	topk := do(t, s, http.MethodGet, soakTopKPath, "")
	tile := do(t, s, http.MethodGet, soakTilePath, "")
	for _, rec := range []int{heat.Code, batch.Code, topk.Code, tile.Code} {
		if rec != http.StatusOK {
			t.Fatalf("truth capture failed with status %d", rec)
		}
	}
	return soakTruth{
		heat:  heat.Body.Bytes(),
		batch: batch.Body.Bytes(),
		topk:  topk.Body.Bytes(),
		tile:  tile.Body.Bytes(),
		etag:  tile.Header().Get("ETag"),
	}
}

func statsVersion(t *testing.T, s *Server) uint64 {
	t.Helper()
	rec := do(t, s, http.MethodGet, "/stats", "")
	if rec.Code != http.StatusOK {
		t.Errorf("/stats = %d", rec.Code)
		return 0
	}
	var st struct {
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Errorf("decoding /stats: %v", err)
		return 0
	}
	return st.Version
}

func TestMutableServerSoak(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Map: handMap(t), Mutable: true, TileSize: 64})
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers   = 6
		mutations = 18
	)
	readLoops := 40
	if testing.Short() {
		readLoops = 12
	}

	var (
		mu    sync.Mutex
		truth = map[uint64]soakTruth{}
		done  atomic.Bool
	)
	record := func(version uint64) {
		tr := captureTruth(t, s)
		mu.Lock()
		truth[version] = tr
		mu.Unlock()
	}
	lookup := func(version uint64) (soakTruth, bool) {
		mu.Lock()
		defer mu.Unlock()
		tr, ok := truth[version]
		return tr, ok
	}
	record(s.Version())

	var wg sync.WaitGroup
	// The writer: serialized add/remove mutations, ground truth captured
	// after every publish.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		rng := rand.New(rand.NewSource(91))
		for i := 0; i < mutations; i++ {
			var method, path, body string
			switch i % 3 {
			case 0:
				method, path = http.MethodPost, "/clients"
				body = fmt.Sprintf(`{"points":[{"x":%.3f,"y":%.3f}]}`, rng.Float64()*100, rng.Float64()*100)
			case 1:
				method, path = http.MethodPost, "/facilities"
				body = fmt.Sprintf(`{"points":[{"x":%.3f,"y":%.3f}]}`, rng.Float64()*100, rng.Float64()*100)
			case 2:
				method, path = http.MethodDelete, "/clients"
				body = `{"indexes":[0]}`
			}
			rec := do(t, s, method, path, body)
			if rec.Code != http.StatusOK {
				t.Errorf("mutation %d (%s %s) = %d: %s", i, method, path, rec.Code, rec.Body)
				return
			}
			var resp struct {
				Version uint64 `json:"version"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Errorf("decoding mutation response %d %s %s (code %d, body %q): %v", i, method, path, rec.Code, rec.Body.String(), err)
				return
			}
			if want := uint64(i + 2); resp.Version != want {
				t.Errorf("mutation %d published version %d, want %d", i, resp.Version, want)
			}
			record(resp.Version)
		}
	}()

	// The readers: mixed endpoint reads with sandwich consistency checks.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + int64(r)))
			var lastVersion uint64
			for i := 0; i < readLoops || !done.Load(); i++ {
				v1 := statsVersion(t, s)
				if v1 < lastVersion {
					t.Errorf("reader %d: /stats version went backwards: %d after %d", r, v1, lastVersion)
					return
				}
				lastVersion = v1

				kind := rng.Intn(4)
				var body []byte
				var etag string
				switch kind {
				case 0:
					w := do(t, s, http.MethodGet, soakHeatPath, "")
					if w.Code != http.StatusOK {
						t.Errorf("reader %d: /heat = %d", r, w.Code)
						return
					}
					body = w.Body.Bytes()
				case 1:
					w := do(t, s, http.MethodPost, "/heat/batch", soakBatchBody)
					if w.Code != http.StatusOK {
						t.Errorf("reader %d: /heat/batch = %d", r, w.Code)
						return
					}
					body = w.Body.Bytes()
				case 2:
					w := do(t, s, http.MethodGet, soakTopKPath, "")
					if w.Code != http.StatusOK {
						t.Errorf("reader %d: /topk = %d", r, w.Code)
						return
					}
					body = w.Body.Bytes()
				case 3:
					w := do(t, s, http.MethodGet, soakTilePath, "")
					if w.Code != http.StatusOK {
						t.Errorf("reader %d: tile = %d", r, w.Code)
						return
					}
					body = w.Body.Bytes()
					etag = w.Header().Get("ETag")
				}
				v2 := statsVersion(t, s)
				if v2 < v1 {
					t.Errorf("reader %d: /stats version went backwards: %d after %d", r, v2, v1)
					return
				}
				lastVersion = v2
				if v1 != v2 {
					continue // state moved mid-read; no single version to pin against
				}
				tr, ok := lookup(v1)
				if !ok {
					continue // ground truth for v1 not recorded yet
				}
				var want []byte
				switch kind {
				case 0:
					want = tr.heat
				case 1:
					want = tr.batch
				case 2:
					want = tr.topk
				case 3:
					want = tr.tile
					if etag != tr.etag {
						t.Errorf("reader %d: tile ETag %s at stable version %d, want %s", r, etag, v1, tr.etag)
						return
					}
				}
				if !bytes.Equal(body, want) {
					t.Errorf("reader %d: read kind %d at stable version %d differs from the published state", r, kind, v1)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Convergence: the final served state equals the last recorded truth.
	final := statsVersion(t, s)
	if want := uint64(mutations + 1); final != want {
		t.Fatalf("final version = %d, want %d", final, want)
	}
	tr, ok := lookup(final)
	if !ok {
		t.Fatalf("no ground truth for final version %d", final)
	}
	got := captureTruth(t, s)
	if !bytes.Equal(got.heat, tr.heat) || !bytes.Equal(got.batch, tr.batch) ||
		!bytes.Equal(got.topk, tr.topk) || !bytes.Equal(got.tile, tr.tile) {
		t.Fatal("final state does not match the last published ground truth")
	}
}
