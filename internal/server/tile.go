package server

import (
	"math"

	"rnnheatmap/internal/geom"
)

// MaxZoom bounds the tile pyramid depth. At zoom z the world square is split
// into 2^z by 2^z tiles, so 22 levels already address sub-centimeter pixels
// on a city-scale map — deeper requests are rejected rather than rendered.
const MaxZoom = 22

// grid maps slippy-map tile coordinates (z, x, y) onto the map's data
// bounds. Zoom 0 is a single tile covering the whole world square; each
// level doubles the resolution; y = 0 is the top (north) row, matching the
// usual web-map convention.
type grid struct {
	// world is the square viewport tiles are cut from: the data bounds
	// centered in a square of side max(width, height).
	world geom.Rect
}

// newGrid builds the tile grid for the given data bounds. The bounds are
// padded to a square (centered) so tiles have square pixels at every zoom.
func newGrid(bounds geom.Rect) grid {
	side := math.Max(bounds.Width(), bounds.Height())
	c := bounds.Center()
	return grid{world: geom.RectFromCenter(c, side/2)}
}

// valid reports whether (z, x, y) addresses a tile of the pyramid.
func (g grid) valid(z, x, y int) bool {
	if z < 0 || z > MaxZoom {
		return false
	}
	n := 1 << z
	return x >= 0 && x < n && y >= 0 && y < n
}

// tileBounds returns the world-space rectangle covered by tile (z, x, y).
// The caller must have checked valid first.
func (g grid) tileBounds(z, x, y int) geom.Rect {
	n := float64(uint64(1) << z)
	side := g.world.Width() / n
	minX := g.world.MinX + float64(x)*side
	maxY := g.world.MaxY - float64(y)*side
	return geom.Rect{MinX: minX, MinY: maxY - side, MaxX: minX + side, MaxY: maxY}
}
