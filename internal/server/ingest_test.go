package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"image/png"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func decodeMutations(t *testing.T, rec *httptest.ResponseRecorder) mutationsResponse {
	t.Helper()
	var resp mutationsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding mutations response %q: %v", rec.Body, err)
	}
	return resp
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMutationsEndpoint covers the happy path of POST /mutations: a multi-op
// batch lands atomically under a single version bump, and the named form
// behaves like the alias.
func TestMutationsEndpoint(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Map: handMap(t), Mutable: true, TileSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	body := `{"ops":[
		{"add_clients":[{"x":20,"y":20},{"x":80,"y":20}]},
		{"remove_clients":[3],"add_facilities":[{"x":40,"y":60}]},
		{"remove_facilities":[5]}
	]}`
	rec := do(t, s, http.MethodPost, "/mutations", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /mutations = %d (body %s)", rec.Code, rec.Body)
	}
	resp := decodeMutations(t, rec)
	// handMap: 9 clients, 5 facilities. Net: +2 -1 clients, +1 -1 facilities.
	if resp.Version != 2 || resp.Ops != 5 || resp.Clients != 10 || resp.Facilities != 5 {
		t.Fatalf("response %+v, want version 2, 5 ops, 10 clients, 5 facilities", resp)
	}
	if resp.GroupBatches != 1 {
		t.Fatalf("lone batch reports %d group batches", resp.GroupBatches)
	}
	if s.Version() != 2 {
		t.Fatalf("one batch moved the version to %d, want 2", s.Version())
	}
	if rec := do(t, s, http.MethodPost, "/maps/default/mutations", `{"ops":[{"add_clients":[{"x":50,"y":50}]}]}`); rec.Code != http.StatusOK {
		t.Fatalf("named form = %d (body %s)", rec.Code, rec.Body)
	}
	if s.Version() != 3 {
		t.Fatalf("version = %d after two batches, want 3", s.Version())
	}
	st := do(t, s, http.MethodGet, "/stats", "")
	var stats statsResponse
	if err := json.Unmarshal(st.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Ingest.BatchesCommitted != 2 || stats.Ingest.OpsCommitted != 6 || stats.Ingest.GroupCommits != 2 {
		t.Fatalf("ingest stats %+v, want 2 batches / 6 ops / 2 group commits", stats.Ingest)
	}
	if stats.Ingest.QueueCap <= 0 || stats.Ingest.CoalesceOps <= 0 {
		t.Fatalf("ingest stats %+v missing configuration", stats.Ingest)
	}
}

// TestMutationsValidation covers the refusal paths: read-only servers,
// malformed bodies, empty batches, and — via the writer's prevalidation —
// out-of-range indexes, which must leave the map untouched.
func TestMutationsValidation(t *testing.T) {
	t.Parallel()
	ro, err := New(Config{Map: handMap(t)})
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, ro, http.MethodPost, "/mutations", `{"ops":[{"add_clients":[{"x":1,"y":1}]}]}`); rec.Code != http.StatusForbidden {
		t.Errorf("read-only POST /mutations = %d, want 403", rec.Code)
	}

	s, err := New(Config{Map: handMap(t), Mutable: true, MaxBatch: 6})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed", "{", http.StatusBadRequest},
		{"no ops", `{"ops":[]}`, http.StatusBadRequest},
		{"all empty ops", `{"ops":[{},{}]}`, http.StatusBadRequest},
		{"unknown field", `{"operations":[]}`, http.StatusBadRequest},
		{"client index out of range", `{"ops":[{"remove_clients":[99]}]}`, http.StatusBadRequest},
		{"negative facility index", `{"ops":[{"add_clients":[{"x":1,"y":1}]},{"remove_facilities":[-1]}]}`, http.StatusBadRequest},
		{"index valid only mid-batch", `{"ops":[{"remove_clients":[8,8]}]}`, http.StatusBadRequest},
		{"over op budget", `{"ops":[{"add_clients":[{"x":1,"y":1},{"x":2,"y":2},{"x":3,"y":3},{"x":4,"y":4}]},{"remove_clients":[0,1,2]}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, s, http.MethodPost, "/mutations", tc.body)
			if rec.Code != tc.want {
				t.Errorf("POST /mutations %s = %d, want %d (body %s)", tc.name, rec.Code, tc.want, rec.Body)
			}
		})
	}
	if s.Version() != 1 {
		t.Errorf("rejected batches bumped the version to %d", s.Version())
	}
	// A batch whose removal index is only valid because an earlier op of the
	// same batch added the point: indexes are sequential across the array.
	rec := do(t, s, http.MethodPost, "/mutations", `{"ops":[{"add_facilities":[{"x":70,"y":30}]},{"remove_facilities":[5]}]}`)
	if rec.Code != http.StatusOK {
		t.Errorf("add-then-remove batch = %d, want 200 (body %s)", rec.Code, rec.Body)
	}
}

// TestMutationsMatchSequentialThroughAPI: one server ingests a batch through
// POST /mutations, another applies the same ops one request at a time; every
// read answer — tile bytes included — must be identical.
func TestMutationsMatchSequentialThroughAPI(t *testing.T) {
	t.Parallel()
	build := func() *Server {
		s, err := New(Config{Map: handMap(t), Mutable: true, TileSize: 32})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	batched, sequential := build(), build()

	rec := do(t, batched, http.MethodPost, "/mutations", `{"ops":[
		{"add_clients":[{"x":25,"y":25},{"x":75,"y":70}]},
		{"remove_clients":[4]},
		{"add_facilities":[{"x":30,"y":70}]},
		{"remove_facilities":[2]}
	]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("batched ingest = %d (body %s)", rec.Code, rec.Body)
	}
	for _, mu := range []struct{ method, path, body string }{
		{http.MethodPost, "/clients", `{"points":[{"x":25,"y":25},{"x":75,"y":70}]}`},
		{http.MethodDelete, "/clients", `{"indexes":[4]}`},
		{http.MethodPost, "/facilities", `{"points":[{"x":30,"y":70}]}`},
		{http.MethodDelete, "/facilities", `{"indexes":[2]}`},
	} {
		if rec := do(t, sequential, mu.method, mu.path, mu.body); rec.Code != http.StatusOK {
			t.Fatalf("%s %s = %d (body %s)", mu.method, mu.path, rec.Code, rec.Body)
		}
	}
	for _, path := range []string{
		"/tiles/0/0/0.png", "/tiles/2/0/0.png", "/tiles/2/3/3.png",
		"/heat?x=10&y=10", "/heat?x=75&y=70", "/topk?k=5", "/histogram?bins=8",
	} {
		b := do(t, batched, http.MethodGet, path, "")
		q := do(t, sequential, http.MethodGet, path, "")
		if b.Code != 200 || q.Code != 200 {
			t.Fatalf("GET %s: %d (batched) vs %d (sequential)", path, b.Code, q.Code)
		}
		if !bytes.Equal(b.Body.Bytes(), q.Body.Bytes()) {
			t.Errorf("GET %s differs between batched and sequential ingestion", path)
		}
	}
}

// TestMutationsBackpressure pins the 429 contract deterministically: with the
// writer wedged on the map's writer lock and the admission queue full, the
// next batch is refused immediately with Retry-After — and is guaranteed not
// applied.
func TestMutationsBackpressure(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Map: handMap(t), Mutable: true, CoalesceWindow: -1, IngestQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	inst := s.def()

	// Wedge the writer: its next commit blocks on writeMu.
	inst.writeMu.Lock()
	results := make(chan mutationsResponse, 2)
	post := func(x, y float64) {
		rec := do(t, s, http.MethodPost, "/mutations", fmt.Sprintf(`{"ops":[{"add_clients":[{"x":%g,"y":%g}]}]}`, x, y))
		if rec.Code != http.StatusOK {
			t.Errorf("admitted batch = %d (body %s)", rec.Code, rec.Body)
		}
		var resp mutationsResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Errorf("decoding mutations response %q: %v", rec.Body, err)
		}
		results <- resp
	}
	go post(20, 20)
	// The writer dequeues the first batch and blocks committing it.
	waitFor(t, "writer to take batch A", func() bool { return len(inst.ing.queue) == 0 })
	go post(21, 21)
	// The second batch fills the (capacity 1) queue.
	waitFor(t, "batch B to queue", func() bool { return len(inst.ing.queue) == 1 })

	rec := do(t, s, http.MethodPost, "/mutations", `{"ops":[{"add_clients":[{"x":22,"y":22}]}]}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("batch against a full queue = %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 response has no Retry-After header")
	}

	inst.writeMu.Unlock()
	versions := map[uint64]bool{}
	for i := 0; i < 2; i++ {
		versions[(<-results).Version] = true
	}
	if !versions[2] || !versions[3] {
		t.Errorf("admitted batches got versions %v, want {2, 3}", versions)
	}
	// The throttled batch left no trace: two batches, two clients added.
	if got := s.Version(); got != 3 {
		t.Errorf("final version = %d, want 3", got)
	}
	if got := s.def().state().m.NumClients(); got != 11 {
		t.Errorf("final clients = %d, want 11 (the 429'd add must not apply)", got)
	}
	if got := inst.ing.throttled.Load(); got != 1 {
		t.Errorf("throttled counter = %d, want 1", got)
	}
}

// TestMutationsCoalescing proves the group commit: batches admitted within
// one coalescing window share a single commit (and a single WAL fsync) while
// keeping their own versions — and an invalid batch in the group is refused
// alone, without poisoning its companions.
func TestMutationsCoalescing(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Map: handMap(t), Mutable: true, CoalesceWindow: 500 * time.Millisecond, IngestQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		code int
		resp mutationsResponse
	}
	results := make(chan result, 4)
	var wg sync.WaitGroup
	for i, body := range []string{
		`{"ops":[{"add_clients":[{"x":20,"y":20}]}]}`,
		`{"ops":[{"add_clients":[{"x":21,"y":22}]},{"add_facilities":[{"x":60,"y":20}]}]}`,
		`{"ops":[{"remove_clients":[4444]}]}`, // invalid whatever its position in the group
		`{"ops":[{"add_clients":[{"x":23,"y":24}]}]}`,
	} {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			rec := do(t, s, http.MethodPost, "/mutations", body)
			var resp mutationsResponse
			if rec.Code == http.StatusOK {
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Errorf("batch %d: decoding response %q: %v", i, rec.Body, err)
				}
			}
			results <- result{code: rec.Code, resp: resp}
		}(i, body)
	}
	wg.Wait()
	close(results)

	versions := map[uint64]bool{}
	var rejected, groupCommits int
	for res := range results {
		switch res.code {
		case http.StatusOK:
			versions[res.resp.Version] = true
			if res.resp.GroupBatches > 1 {
				groupCommits++
			}
		case http.StatusBadRequest:
			rejected++
		default:
			t.Errorf("unexpected status %d", res.code)
		}
	}
	if rejected != 1 {
		t.Errorf("%d batches rejected, want exactly the invalid one", rejected)
	}
	if !versions[2] || !versions[3] || !versions[4] {
		t.Errorf("accepted versions %v, want {2, 3, 4}", versions)
	}
	if groupCommits == 0 {
		t.Error("no batch reported sharing a group commit; coalescing never happened")
	}
	if got := s.Version(); got != 4 {
		t.Errorf("final version = %d, want 4", got)
	}
	g := s.def().ing
	if got := g.groups.Load(); got < 1 || got > 3 {
		t.Errorf("group commits = %d, want between 1 and 3", got)
	}
	if got := g.batches.Load(); got != 3 {
		t.Errorf("batches committed = %d, want 3", got)
	}
}

// TestIngestSoak hammers the ingestion path under -race: concurrent batch
// writers against a deliberately tiny queue and sub-millisecond coalescing
// window, interleaved with readers. Invariants: versions are monotone, the
// queue depth never exceeds its capacity, a 429'd batch is never partially
// applied, and the final state accounts exactly for the acked batches.
func TestIngestSoak(t *testing.T) {
	t.Parallel()
	s, err := New(Config{
		Map: handMap(t), Mutable: true, TileSize: 16, TileCacheSize: 16,
		CoalesceWindow: 500 * time.Microsecond, CoalesceOps: 16, IngestQueue: 4,
		SnapshotDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	writers, perWriter, readers := 4, 30, 3
	if testing.Short() {
		writers, perWriter, readers = 2, 10, 2
	}
	var acked, throttledSeen atomic.Int64
	var failed atomic.Bool
	fail := func(format string, args ...any) {
		if failed.CompareAndSwap(false, true) {
			t.Errorf(format, args...)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers: every batch is net-zero on the client count (one add, one
	// remove of index 0) — so any partially applied batch shows up as a
	// drifted final count.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + w)))
			for i := 0; i < perWriter; i++ {
				body := fmt.Sprintf(`{"ops":[{"add_clients":[{"x":%f,"y":%f}]},{"remove_clients":[0]}]}`,
					rng.Float64()*100, rng.Float64()*100)
				for {
					resp, err := ts.Client().Post(ts.URL+"/mutations", "application/json", strings.NewReader(body))
					if err != nil {
						fail("writer %d: %v", w, err)
						return
					}
					code := resp.StatusCode
					resp.Body.Close()
					if code == http.StatusOK {
						acked.Add(1)
						break
					}
					if code != http.StatusTooManyRequests {
						fail("writer %d: status %d", w, code)
						return
					}
					throttledSeen.Add(1)
					time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := uint64(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					resp, err := ts.Client().Get(ts.URL + "/stats")
					if err != nil {
						fail("reader %d: %v", r, err)
						return
					}
					var stats statsResponse
					if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
						fail("reader %d: stats decode: %v", r, err)
					}
					resp.Body.Close()
					if stats.Version < last {
						fail("reader %d: version went backwards: %d after %d", r, stats.Version, last)
					}
					last = stats.Version
					if stats.Ingest.QueueDepth > stats.Ingest.QueueCap {
						fail("reader %d: queue depth %d exceeds cap %d", r, stats.Ingest.QueueDepth, stats.Ingest.QueueCap)
					}
				} else {
					resp, err := ts.Client().Get(ts.URL + "/tiles/1/0/0.png")
					if err != nil {
						fail("reader %d: %v", r, err)
						return
					}
					if resp.StatusCode != 200 {
						fail("reader %d: tile = %d", r, resp.StatusCode)
					} else if _, err := png.Decode(resp.Body); err != nil {
						fail("reader %d: torn tile: %v", r, err)
					}
					resp.Body.Close()
				}
			}
		}(r)
	}
	// Let the writers finish, then release the readers.
	done := make(chan struct{})
	go func() { defer close(done); wg.Wait() }()
	waitFor(t, "writers to drain", func() bool {
		return acked.Load() == int64(writers*perWriter) || failed.Load()
	})
	close(stop)
	<-done

	total := int64(writers * perWriter)
	if got := acked.Load(); got != total && !failed.Load() {
		t.Fatalf("acked %d of %d batches", got, total)
	}
	if got, want := s.Version(), uint64(total+1); got != want {
		t.Errorf("final version = %d, want %d (one bump per acked batch)", got, want)
	}
	st := s.def().state()
	if got := st.m.NumClients(); got != 9 {
		t.Errorf("final clients = %d, want 9: some batch applied partially", got)
	}
	if got := st.m.NumFacilities(); got != 5 {
		t.Errorf("final facilities = %d, want 5", got)
	}
	g := s.def().ing
	if got := g.batches.Load(); got != uint64(total) {
		t.Errorf("batches committed = %d, want %d", got, total)
	}
	if got := g.ops.Load(); got != uint64(2*total) {
		t.Errorf("ops committed = %d, want %d", got, 2*total)
	}
	t.Logf("soak: %d batches acked, %d throttled (429), %d group commits",
		acked.Load(), throttledSeen.Load(), g.groups.Load())
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestIngestShutdownDuringLoad: deleting a map (or closing the server) with
// batches still queued must answer every one of them — none may hang — and
// the writer goroutine must exit.
func TestIngestShutdownDrains(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Map: handMap(t), Mutable: true, CoalesceWindow: -1, IngestQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Create a second map to delete out from under queued batches.
	body := `{"name":"victim",
		"clients":[{"x":7,"y":7},{"x":13,"y":7},{"x":7,"y":13},{"x":13,"y":13},{"x":10,"y":13}],
		"facilities":[{"x":10,"y":10},{"x":90,"y":90}]}`
	if rec := do(t, s, http.MethodPost, "/maps", body); rec.Code != http.StatusCreated {
		t.Fatalf("creating victim map: %d (body %s)", rec.Code, rec.Body)
	}
	inst := s.lookup("victim")
	inst.writeMu.Lock()
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			rec := do(t, s, http.MethodPost, "/maps/victim/mutations",
				fmt.Sprintf(`{"ops":[{"add_clients":[{"x":%d,"y":30}]}]}`, 30+i))
			codes <- rec.Code
		}(i)
	}
	// Give both batches time to be admitted; the writer wedges on the lock
	// we hold, so they sit in commit or in the queue.
	time.Sleep(50 * time.Millisecond)
	delDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { delDone <- do(t, s, http.MethodDelete, "/maps/victim", "") }()
	// DELETE removes the name from the registry, then waits for the writer —
	// which is blocked on the lock we hold. Release it.
	waitFor(t, "victim to leave the registry", func() bool { return s.lookup("victim") == nil })
	inst.writeMu.Unlock()
	if rec := <-delDone; rec.Code != http.StatusOK {
		t.Fatalf("DELETE /maps/victim = %d (body %s)", rec.Code, rec.Body)
	}
	for i := 0; i < 2; i++ {
		code := <-codes
		// Batches that committed before the delete linearized get 200; the
		// rest see 404 (membership check) or 503 (drained). Never a hang,
		// never a torn application.
		if code != http.StatusOK && code != http.StatusNotFound && code != http.StatusServiceUnavailable {
			t.Errorf("queued batch resolved with %d", code)
		}
	}
	select {
	case <-inst.ing.exited:
	case <-time.After(5 * time.Second):
		t.Fatal("ingestion writer did not exit after delete")
	}
}
