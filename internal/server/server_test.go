package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"rnnheatmap/heatmap"
	"rnnheatmap/internal/dataset"
)

// buildMap computes a small deterministic heat map.
func buildMap(t *testing.T, workers int) *heatmap.Map {
	t.Helper()
	ds := dataset.Uniform(600, datasetBounds(), 42)
	clients, facilities := ds.SampleClientsFacilities(400, 120, 7)
	m, err := heatmap.Build(heatmap.Config{
		Clients:    clients,
		Facilities: facilities,
		Metric:     heatmap.L2,
		Workers:    workers,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func datasetBounds() (r heatmap.Rect) {
	r.MaxX, r.MaxY = 1000, 1000
	return r
}

func newTestServer(t *testing.T, workers int) *Server {
	t.Helper()
	s, err := New(Config{Map: buildMap(t, workers), TileSize: 64, TileCacheSize: 16})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	t.Parallel()
	s := newTestServer(t, 1)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", rec.Code)
	}
	var body struct {
		Status  string `json:"status"`
		Regions int    `json:"regions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	if body.Status != "ok" || body.Regions <= 0 {
		t.Fatalf("body = %+v, want status ok and regions > 0", body)
	}
}

// TestTileByteDeterminism asserts the acceptance criterion: the same tile is
// byte-identical no matter how many workers swept the map.
func TestTileByteDeterminism(t *testing.T) {
	t.Parallel()
	s1 := newTestServer(t, 1)
	s4 := newTestServer(t, 4)
	paths := []string{
		"/tiles/0/0/0.png",
		"/tiles/1/0/1.png",
		"/tiles/2/1/2.png",
		"/tiles/3/5/3.png",
	}
	for _, path := range paths {
		r1 := get(t, s1, path)
		r4 := get(t, s4, path)
		if r1.Code != http.StatusOK || r4.Code != http.StatusOK {
			t.Fatalf("GET %s = %d (workers=1), %d (workers=4), want 200", path, r1.Code, r4.Code)
		}
		if ct := r1.Header().Get("Content-Type"); ct != "image/png" {
			t.Fatalf("GET %s Content-Type = %q, want image/png", path, ct)
		}
		if !bytes.Equal(r1.Body.Bytes(), r4.Body.Bytes()) {
			t.Errorf("GET %s differs between workers=1 and workers=4", path)
		}
	}
}

// TestTileCacheWarm asserts that a warm tile request does not re-render.
func TestTileCacheWarm(t *testing.T) {
	t.Parallel()
	s := newTestServer(t, 1)
	const path = "/tiles/2/1/1.png"

	cold := get(t, s, path)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold GET %s = %d, want 200", path, cold.Code)
	}
	if got := s.RenderCalls(); got != 1 {
		t.Fatalf("after cold request RenderCalls = %d, want 1", got)
	}

	warm := get(t, s, path)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm GET %s = %d, want 200", path, warm.Code)
	}
	if got := s.RenderCalls(); got != 1 {
		t.Errorf("warm request re-rendered: RenderCalls = %d, want 1", got)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Errorf("warm tile bytes differ from cold tile bytes")
	}
	hits, misses, _ := s.def().cache.stats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache hits=%d misses=%d, want 1 and 1", hits, misses)
	}

	// A conditional request with the tile's ETag is answered 304.
	etag := cold.Header().Get("ETag")
	if etag == "" {
		t.Fatal("tile response has no ETag")
	}
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.Header.Set("If-None-Match", etag)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Errorf("conditional GET = %d, want 304", rec.Code)
	}
}

// TestTileSingleFlight asserts that concurrent cold requests for one tile
// render it exactly once.
func TestTileSingleFlight(t *testing.T) {
	t.Parallel()
	s := newTestServer(t, 1)
	const path = "/tiles/3/2/4.png"
	const n = 16
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := get(t, s, path)
			if rec.Code == http.StatusOK {
				bodies[i] = rec.Body.Bytes()
			}
		}(i)
	}
	wg.Wait()
	if got := s.RenderCalls(); got != 1 {
		t.Errorf("%d concurrent requests rendered %d times, want 1", n, got)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
}

// TestBatchMatchesHeatAt asserts POST /heat/batch agrees with Map.HeatAt.
func TestBatchMatchesHeatAt(t *testing.T) {
	t.Parallel()
	m := buildMap(t, 2)
	s, err := New(Config{Map: m})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	points := []heatmap.Point{
		heatmap.Pt(500, 500), heatmap.Pt(10, 990), heatmap.Pt(250.5, 730.25),
		heatmap.Pt(-50, -50), // outside every circle: empty RNN set
		heatmap.Pt(333, 333),
	}
	var payload struct {
		Points []map[string]float64 `json:"points"`
	}
	for _, p := range points {
		payload.Points = append(payload.Points, map[string]float64{"x": p.X, "y": p.Y})
	}
	body, _ := json.Marshal(payload)
	req := httptest.NewRequest(http.MethodPost, "/heat/batch", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /heat/batch = %d, want 200 (body %s)", rec.Code, rec.Body)
	}
	var resp struct {
		Results []struct {
			X    float64 `json:"x"`
			Y    float64 `json:"y"`
			Heat float64 `json:"heat"`
			RNN  []int   `json:"rnn"`
		} `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if len(resp.Results) != len(points) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(points))
	}
	for i, p := range points {
		wantHeat, wantRNN := m.HeatAt(p)
		got := resp.Results[i]
		if got.Heat != wantHeat {
			t.Errorf("point %v: heat = %v, want %v", p, got.Heat, wantHeat)
		}
		if len(got.RNN) != len(wantRNN) {
			t.Errorf("point %v: RNN = %v, want %v", p, got.RNN, wantRNN)
			continue
		}
		for j := range wantRNN {
			if got.RNN[j] != wantRNN[j] {
				t.Errorf("point %v: RNN = %v, want %v", p, got.RNN, wantRNN)
				break
			}
		}
	}
}

// TestHeatMatchesHeatAt asserts GET /heat agrees with Map.HeatAt.
func TestHeatMatchesHeatAt(t *testing.T) {
	t.Parallel()
	m := buildMap(t, 1)
	s, err := New(Config{Map: m})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p := heatmap.Pt(421.5, 610.25)
	rec := get(t, s, fmt.Sprintf("/heat?x=%v&y=%v", p.X, p.Y))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /heat = %d, want 200", rec.Code)
	}
	var got struct {
		Heat float64 `json:"heat"`
		RNN  []int   `json:"rnn"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	wantHeat, wantRNN := m.HeatAt(p)
	if got.Heat != wantHeat || len(got.RNN) != len(wantRNN) {
		t.Fatalf("heat=%v rnn=%v, want heat=%v rnn=%v", got.Heat, got.RNN, wantHeat, wantRNN)
	}
}

func TestTopKAndRegions(t *testing.T) {
	t.Parallel()
	m := buildMap(t, 1)
	s, err := New(Config{Map: m})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rec := get(t, s, "/topk?k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /topk = %d, want 200", rec.Code)
	}
	var topk struct {
		K       int `json:"k"`
		Regions []struct {
			Heat float64 `json:"heat"`
		} `json:"regions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &topk); err != nil {
		t.Fatalf("decoding topk: %v", err)
	}
	want := m.TopK(3)
	if len(topk.Regions) != len(want) {
		t.Fatalf("topk returned %d regions, want %d", len(topk.Regions), len(want))
	}
	for i := range want {
		if topk.Regions[i].Heat != want[i].Heat {
			t.Errorf("topk[%d].Heat = %v, want %v", i, topk.Regions[i].Heat, want[i].Heat)
		}
	}

	maxHeat, _ := m.MaxHeat()
	rec = get(t, s, fmt.Sprintf("/regions?min=%v", maxHeat))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /regions = %d, want 200", rec.Code)
	}
	var regions struct {
		Total   int               `json:"total"`
		Regions []json.RawMessage `json:"regions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &regions); err != nil {
		t.Fatalf("decoding regions: %v", err)
	}
	if wantN := len(m.AboveThreshold(maxHeat)); regions.Total != wantN || len(regions.Regions) != wantN {
		t.Errorf("regions total=%d len=%d, want %d", regions.Total, len(regions.Regions), wantN)
	}
}

// TestBadRequests covers the 4xx paths.
func TestBadRequests(t *testing.T) {
	t.Parallel()
	s := newTestServer(t, 1)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"heat missing x", http.MethodGet, "/heat?y=2", "", http.StatusBadRequest},
		{"heat malformed x", http.MethodGet, "/heat?x=abc&y=2", "", http.StatusBadRequest},
		{"heat non-finite x", http.MethodGet, "/heat?x=NaN&y=2", "", http.StatusBadRequest},
		{"batch malformed json", http.MethodPost, "/heat/batch", "{", http.StatusBadRequest},
		{"batch empty points", http.MethodPost, "/heat/batch", `{"points":[]}`, http.StatusBadRequest},
		{"batch unknown field", http.MethodPost, "/heat/batch", `{"pts":[{"x":1,"y":2}]}`, http.StatusBadRequest},
		{"batch wrong method", http.MethodGet, "/heat/batch", "", http.StatusMethodNotAllowed},
		{"topk zero k", http.MethodGet, "/topk?k=0", "", http.StatusBadRequest},
		{"topk malformed k", http.MethodGet, "/topk?k=five", "", http.StatusBadRequest},
		{"regions missing min", http.MethodGet, "/regions", "", http.StatusBadRequest},
		{"regions malformed min", http.MethodGet, "/regions?min=hot", "", http.StatusBadRequest},
		{"tile malformed z", http.MethodGet, "/tiles/a/0/0.png", "", http.StatusBadRequest},
		{"tile malformed y", http.MethodGet, "/tiles/0/0/zero.png", "", http.StatusBadRequest},
		{"tile missing extension", http.MethodGet, "/tiles/0/0/0", "", http.StatusBadRequest},
		{"tile negative zoom", http.MethodGet, "/tiles/-1/0/0.png", "", http.StatusNotFound},
		{"tile x out of range", http.MethodGet, "/tiles/1/2/0.png", "", http.StatusNotFound},
		{"tile zoom too deep", http.MethodGet, fmt.Sprintf("/tiles/%d/0/0.png", MaxZoom+1), "", http.StatusNotFound},
		{"unknown path", http.MethodGet, "/nope", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body *strings.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			} else {
				body = strings.NewReader("")
			}
			req := httptest.NewRequest(tc.method, tc.path, body)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != tc.want {
				t.Errorf("%s %s = %d, want %d (body %s)", tc.method, tc.path, rec.Code, tc.want, rec.Body)
			}
		})
	}
}

// TestStatsCounters asserts /stats reflects tile cache activity.
func TestStatsCounters(t *testing.T) {
	t.Parallel()
	s := newTestServer(t, 1)
	get(t, s, "/tiles/1/0/0.png")
	get(t, s, "/tiles/1/0/0.png")
	rec := get(t, s, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /stats = %d, want 200", rec.Code)
	}
	var stats statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if stats.Measure != "size" {
		t.Errorf("stats.Measure = %q, want size", stats.Measure)
	}
	if stats.Tiles.CacheMisses != 1 || stats.Tiles.CacheHits != 1 || stats.Tiles.Renders != 1 {
		t.Errorf("tile stats = %+v, want 1 miss, 1 hit, 1 render", stats.Tiles)
	}
	if stats.Regions <= 0 || stats.MaxHeat <= 0 {
		t.Errorf("stats = %+v, want positive regions and max heat", stats)
	}
}

// TestTileCacheEviction asserts the LRU stays within capacity.
func TestTileCacheEviction(t *testing.T) {
	t.Parallel()
	m := buildMap(t, 1)
	s, err := New(Config{Map: m, TileSize: 32, TileCacheSize: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for x := 0; x < 8; x++ {
		rec := get(t, s, fmt.Sprintf("/tiles/3/%d/0.png", x))
		if rec.Code != http.StatusOK {
			t.Fatalf("tile %d = %d, want 200", x, rec.Code)
		}
	}
	if got := s.def().cache.len(); got != 4 {
		t.Errorf("cache holds %d tiles, want capacity 4", got)
	}
	// The oldest tile was evicted: re-requesting it renders again.
	before := s.RenderCalls()
	get(t, s, "/tiles/3/0/0.png")
	if got := s.RenderCalls(); got != before+1 {
		t.Errorf("evicted tile did not re-render: RenderCalls %d -> %d", before, got)
	}
}

// TestHistogram asserts GET /histogram agrees with Map.HeatHistogram.
func TestHistogram(t *testing.T) {
	t.Parallel()
	m := buildMap(t, 1)
	s, err := New(Config{Map: m})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rec := get(t, s, "/histogram?bins=8")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /histogram = %d, want 200", rec.Code)
	}
	var got struct {
		Bins   int       `json:"bins"`
		Edges  []float64 `json:"edges"`
		Counts []int     `json:"counts"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decoding histogram: %v", err)
	}
	wantEdges, wantCounts := m.HeatHistogram(8)
	if got.Bins != 8 || len(got.Edges) != len(wantEdges) || len(got.Counts) != len(wantCounts) {
		t.Fatalf("histogram shape = %d edges, %d counts; want %d and %d",
			len(got.Edges), len(got.Counts), len(wantEdges), len(wantCounts))
	}
	for i := range wantCounts {
		if got.Counts[i] != wantCounts[i] {
			t.Errorf("count[%d] = %d, want %d", i, got.Counts[i], wantCounts[i])
		}
	}
	for _, bad := range []string{"/histogram?bins=0", "/histogram?bins=1001", "/histogram?bins=many"} {
		if rec := get(t, s, bad); rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", bad, rec.Code)
		}
	}
}
