package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"rnnheatmap/heatmap"
)

// The live mutation API. Every endpoint applies one heatmap.Delta through
// ApplyDelta's copy-on-write path while holding the writer lock, builds the
// derived snapshot state (renderer, tile grid, heat range, summary), migrates
// the tile cache, and atomically publishes the new snapshot. Readers keep
// serving the previous snapshot until the swap and are never blocked.
//
//	POST   /clients     {"points":[{"x":..,"y":..},...]}
//	DELETE /clients     {"indexes":[i,...]}
//	POST   /facilities  {"points":[{"x":..,"y":..},...]}
//	DELETE /facilities  {"indexes":[j,...]}
//
// Removal indexes are applied sequentially with swap-remove semantics: each
// index refers to the set as left by the preceding removals of the same
// request, and the last element moves into the freed slot.

// mutateRequest is the body of every mutation endpoint; points for POST,
// indexes for DELETE.
type mutateRequest struct {
	Points  []pointJSON `json:"points,omitempty"`
	Indexes []int       `json:"indexes,omitempty"`
}

// mutateResponse reports the applied update and the new map version.
type mutateResponse struct {
	Version        uint64   `json:"version"`
	Clients        int      `json:"clients"`
	Facilities     int      `json:"facilities"`
	Regions        int      `json:"regions"`
	MaxHeat        float64  `json:"max_heat"`
	Rebuilt        bool     `json:"rebuilt"`
	ChangedClients int      `json:"changed_clients"`
	EventsTotal    int      `json:"events_total"`
	EventsReswept  int      `json:"events_reswept"`
	TilesRetained  int      `json:"tiles_retained"`
	DirtyRect      rectJSON `json:"dirty_rect"`
	DurationMS     float64  `json:"duration_ms"`
}

func (s *Server) handleAddClients(w http.ResponseWriter, r *http.Request) {
	s.mutate(w, r, true, func(req *mutateRequest) heatmap.Delta {
		return heatmap.Delta{AddClients: toPoints(req.Points)}
	})
}

func (s *Server) handleRemoveClients(w http.ResponseWriter, r *http.Request) {
	s.mutate(w, r, false, func(req *mutateRequest) heatmap.Delta {
		return heatmap.Delta{RemoveClients: req.Indexes}
	})
}

func (s *Server) handleAddFacilities(w http.ResponseWriter, r *http.Request) {
	s.mutate(w, r, true, func(req *mutateRequest) heatmap.Delta {
		return heatmap.Delta{AddFacilities: toPoints(req.Points)}
	})
}

func (s *Server) handleRemoveFacilities(w http.ResponseWriter, r *http.Request) {
	s.mutate(w, r, false, func(req *mutateRequest) heatmap.Delta {
		return heatmap.Delta{RemoveFacilities: req.Indexes}
	})
}

func toPoints(ps []pointJSON) []heatmap.Point {
	out := make([]heatmap.Point, len(ps))
	for i, p := range ps {
		out[i] = heatmap.Pt(p.X, p.Y)
	}
	return out
}

// mutate decodes one mutation request, applies it and swaps the snapshot.
// wantPoints selects which request field the endpoint consumes (points for
// POST, indexes for DELETE).
func (s *Server) mutate(w http.ResponseWriter, r *http.Request, wantPoints bool, toDelta func(*mutateRequest) heatmap.Delta) {
	if !s.mutable {
		writeError(w, http.StatusForbidden, "server is read-only; start heatmapd with -mutable to enable the mutation API")
		return
	}
	var req mutateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return
	}
	if wantPoints {
		if len(req.Points) == 0 {
			writeError(w, http.StatusBadRequest, "request has no points")
			return
		}
		if len(req.Indexes) != 0 {
			writeError(w, http.StatusBadRequest, "POST takes points, not indexes")
			return
		}
		if len(req.Points) > s.maxBatch {
			writeError(w, http.StatusBadRequest, "batch of %d points exceeds the limit of %d", len(req.Points), s.maxBatch)
			return
		}
	} else {
		if len(req.Indexes) == 0 {
			writeError(w, http.StatusBadRequest, "request has no indexes")
			return
		}
		if len(req.Points) != 0 {
			writeError(w, http.StatusBadRequest, "DELETE takes indexes, not points")
			return
		}
		if len(req.Indexes) > s.maxBatch {
			writeError(w, http.StatusBadRequest, "batch of %d indexes exceeds the limit of %d", len(req.Indexes), s.maxBatch)
			return
		}
	}

	started := time.Now()
	s.writeMu.Lock()
	st := s.state()
	next, stats, err := st.m.ApplyDelta(toDelta(&req))
	if err != nil {
		s.writeMu.Unlock()
		if errors.Is(err, heatmap.ErrBadDelta) {
			writeError(w, http.StatusBadRequest, "%v", err)
		} else {
			writeError(w, http.StatusInternalServerError, "applying update: %v", err)
		}
		return
	}
	ns, err := newMapState(next, st.version+1)
	if err != nil {
		s.writeMu.Unlock()
		writeError(w, http.StatusInternalServerError, "building map state: %v", err)
		return
	}
	// Carry clean tiles over to the new version. If the tile grid moved (the
	// data bounds changed) or the shared normalization range changed, every
	// tile's bytes are suspect and the cache starts cold; otherwise only the
	// tiles intersecting the update's dirty rectangle are dropped.
	flushAll := ns.grid != st.grid || ns.heatLo != st.heatLo || ns.heatHi != st.heatHi
	s.cache.migrate(st.version, ns.version, func(z, x, y int) bool {
		return !flushAll && !st.grid.tileBounds(z, x, y).Intersects(stats.DirtyRect)
	})
	s.cur.Store(ns)
	retained := s.cache.len()
	s.writeMu.Unlock()

	maxHeat, _ := next.MaxHeat()
	writeJSON(w, http.StatusOK, mutateResponse{
		Version:        ns.version,
		Clients:        next.NumClients(),
		Facilities:     next.NumFacilities(),
		Regions:        next.NumRegions(),
		MaxHeat:        maxHeat,
		Rebuilt:        stats.Rebuilt,
		ChangedClients: stats.ChangedClients,
		EventsTotal:    stats.EventsTotal,
		EventsReswept:  stats.EventsReswept,
		TilesRetained:  retained,
		DirtyRect:      toRectJSON(stats.DirtyRect),
		DurationMS:     float64(time.Since(started)) / float64(time.Millisecond),
	})
}
