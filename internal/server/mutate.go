package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"rnnheatmap/heatmap"
	"rnnheatmap/internal/snapshot"
)

// The live mutation API. Every endpoint applies one heatmap.Delta through
// ApplyDelta's copy-on-write path while holding the map's writer lock,
// builds the derived snapshot state (renderer, tile grid, heat range,
// summary), appends the delta to the map's write-ahead log (persistent
// servers), migrates the tile cache, and atomically publishes the new
// snapshot. Readers keep serving the previous snapshot until the swap and
// are never blocked; other maps are entirely unaffected.
//
//	POST   /maps/{map}/clients     {"points":[{"x":..,"y":..},...]}
//	DELETE /maps/{map}/clients     {"indexes":[i,...]}
//	POST   /maps/{map}/facilities  {"points":[{"x":..,"y":..},...]}
//	DELETE /maps/{map}/facilities  {"indexes":[j,...]}
//
// (and the un-prefixed aliases against the default map). Removal indexes are
// applied sequentially with swap-remove semantics: each index refers to the
// set as left by the preceding removals of the same request, and the last
// element moves into the freed slot.

// mutateRequest is the body of every mutation endpoint; points for POST,
// indexes for DELETE.
type mutateRequest struct {
	Points  []pointJSON `json:"points,omitempty"`
	Indexes []int       `json:"indexes,omitempty"`
}

// mutateResponse reports the applied update and the new map version.
type mutateResponse struct {
	Map            string   `json:"map"`
	Version        uint64   `json:"version"`
	Clients        int      `json:"clients"`
	Facilities     int      `json:"facilities"`
	Regions        int      `json:"regions"`
	MaxHeat        float64  `json:"max_heat"`
	Rebuilt        bool     `json:"rebuilt"`
	ChangedClients int      `json:"changed_clients"`
	EventsTotal    int      `json:"events_total"`
	EventsReswept  int      `json:"events_reswept"`
	TilesRetained  int      `json:"tiles_retained"`
	DirtyRect      rectJSON `json:"dirty_rect"`
	DurationMS     float64  `json:"duration_ms"`
}

func (s *Server) handleAddClients(inst *mapInstance, w http.ResponseWriter, r *http.Request) {
	s.mutate(inst, w, r, true, func(req *mutateRequest) heatmap.Delta {
		return heatmap.Delta{AddClients: toPoints(req.Points)}
	})
}

func (s *Server) handleRemoveClients(inst *mapInstance, w http.ResponseWriter, r *http.Request) {
	s.mutate(inst, w, r, false, func(req *mutateRequest) heatmap.Delta {
		return heatmap.Delta{RemoveClients: req.Indexes}
	})
}

func (s *Server) handleAddFacilities(inst *mapInstance, w http.ResponseWriter, r *http.Request) {
	s.mutate(inst, w, r, true, func(req *mutateRequest) heatmap.Delta {
		return heatmap.Delta{AddFacilities: toPoints(req.Points)}
	})
}

func (s *Server) handleRemoveFacilities(inst *mapInstance, w http.ResponseWriter, r *http.Request) {
	s.mutate(inst, w, r, false, func(req *mutateRequest) heatmap.Delta {
		return heatmap.Delta{RemoveFacilities: req.Indexes}
	})
}

func toPoints(ps []pointJSON) []heatmap.Point {
	out := make([]heatmap.Point, len(ps))
	for i, p := range ps {
		out[i] = heatmap.Pt(p.X, p.Y)
	}
	return out
}

// mutate decodes one mutation request, applies it and swaps the instance's
// snapshot. wantPoints selects which request field the endpoint consumes
// (points for POST, indexes for DELETE).
func (s *Server) mutate(inst *mapInstance, w http.ResponseWriter, r *http.Request, wantPoints bool, toDelta func(*mutateRequest) heatmap.Delta) {
	if !s.mutable {
		writeErrorCode(w, http.StatusForbidden, codeReadOnly, "server is read-only; start heatmapd with -mutable to enable the mutation API")
		return
	}
	// A map can be individually immutable — e.g. a capacity-measure map
	// restored from a snapshot into a mutable server. Refuse up front with
	// the reason instead of surfacing ApplyDelta's rejection as a 500.
	if err := inst.state().m.DeltaSupported(); err != nil {
		writeErrorCode(w, http.StatusConflict, codeImmutableMap, "map %q cannot be mutated: %v", inst.name, err)
		return
	}
	var req mutateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return
	}
	if wantPoints {
		if len(req.Points) == 0 {
			writeError(w, http.StatusBadRequest, "request has no points")
			return
		}
		if len(req.Indexes) != 0 {
			writeError(w, http.StatusBadRequest, "POST takes points, not indexes")
			return
		}
		if len(req.Points) > s.maxBatch {
			writeError(w, http.StatusBadRequest, "batch of %d points exceeds the limit of %d", len(req.Points), s.maxBatch)
			return
		}
	} else {
		if len(req.Indexes) == 0 {
			writeError(w, http.StatusBadRequest, "request has no indexes")
			return
		}
		if len(req.Points) != 0 {
			writeError(w, http.StatusBadRequest, "DELETE takes indexes, not points")
			return
		}
		if len(req.Indexes) > s.maxBatch {
			writeError(w, http.StatusBadRequest, "batch of %d indexes exceeds the limit of %d", len(req.Indexes), s.maxBatch)
			return
		}
	}

	started := time.Now()
	delta := toDelta(&req)
	inst.writeMu.Lock()
	// Re-check membership under the writer lock (as SaveAll and the save
	// endpoint do): a mutation racing DELETE /maps/{name} would otherwise be
	// acknowledged against an orphaned instance — and, with its WAL already
	// closed, silently lost.
	if s.lookup(inst.name) != inst {
		inst.writeMu.Unlock()
		writeError(w, http.StatusNotFound, "no map named %q", inst.name)
		return
	}
	st := inst.state()
	next, stats, err := st.m.ApplyDelta(delta)
	if err != nil {
		inst.writeMu.Unlock()
		if errors.Is(err, heatmap.ErrBadDelta) {
			writeError(w, http.StatusBadRequest, "%v", err)
		} else {
			writeError(w, http.StatusInternalServerError, "applying update: %v", err)
		}
		return
	}
	ns, err := newMapState(next, st.version+1)
	if err != nil {
		inst.writeMu.Unlock()
		writeError(w, http.StatusInternalServerError, "building map state: %v", err)
		return
	}
	// Write-ahead: the record must be durable before the new state becomes
	// visible, or a crash between the two would lose an acknowledged update.
	// On append failure the new state is discarded — the served map is
	// unchanged and the client sees a 503 it can retry.
	if inst.wal != nil {
		err := inst.wal.Append(snapshot.Record{
			Version:          ns.version,
			AddClients:       delta.AddClients,
			RemoveClients:    delta.RemoveClients,
			AddFacilities:    delta.AddFacilities,
			RemoveFacilities: delta.RemoveFacilities,
		})
		if err != nil {
			inst.writeMu.Unlock()
			writeError(w, http.StatusServiceUnavailable, "logging update: %v", err)
			return
		}
	}
	// Carry clean tiles over to the new version. If the tile grid moved (the
	// data bounds changed) or the shared normalization range changed, every
	// tile's bytes are suspect and the cache starts cold; otherwise only the
	// tiles intersecting the update's dirty rectangle are dropped.
	flushAll := ns.grid != st.grid || ns.heatLo != st.heatLo || ns.heatHi != st.heatHi
	inst.cache.migrate(st.version, ns.version, func(z, x, y int) bool {
		return !flushAll && !st.grid.tileBounds(z, x, y).Intersects(stats.DirtyRect)
	})
	inst.cur.Store(ns)
	inst.dirty.Store(true)
	retained := inst.cache.len()
	inst.writeMu.Unlock()

	maxHeat, _ := next.MaxHeat()
	writeJSON(w, http.StatusOK, mutateResponse{
		Map:            inst.name,
		Version:        ns.version,
		Clients:        next.NumClients(),
		Facilities:     next.NumFacilities(),
		Regions:        next.NumRegions(),
		MaxHeat:        maxHeat,
		Rebuilt:        stats.Rebuilt,
		ChangedClients: stats.ChangedClients,
		EventsTotal:    stats.EventsTotal,
		EventsReswept:  stats.EventsReswept,
		TilesRetained:  retained,
		DirtyRect:      toRectJSON(finiteRect(stats.DirtyRect)),
		DurationMS:     float64(time.Since(started)) / float64(time.Millisecond),
	})
}
