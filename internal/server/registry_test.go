package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"testing"

	"rnnheatmap/internal/snapshot"
)

// mapBody returns a POST /maps payload built from the handMap point sets,
// shifted so each named map is a distinct workload.
func mapBody(name string, shift float64) string {
	type p struct {
		X float64 `json:"x"`
		Y float64 `json:"y"`
	}
	payload := struct {
		Name       string `json:"name"`
		Clients    []p    `json:"clients"`
		Facilities []p    `json:"facilities"`
		Metric     string `json:"metric"`
	}{Name: name, Metric: "l2"}
	for _, c := range []p{{7, 7}, {13, 7}, {7, 13}, {13, 13}, {10, 13}, {97, 3}, {3, 97}, {95, 95}} {
		payload.Clients = append(payload.Clients, p{c.X + shift, c.Y + shift})
	}
	for _, f := range []p{{10, 10}, {90, 10}, {10, 90}, {90, 90}} {
		payload.Facilities = append(payload.Facilities, p{f.X + shift, f.Y + shift})
	}
	b, _ := json.Marshal(payload)
	return string(b)
}

func TestRegistryCRUD(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Map: handMap(t), Mutable: true})
	if err != nil {
		t.Fatal(err)
	}

	// The registry starts with exactly the default map.
	rec := do(t, s, http.MethodGet, "/maps", "")
	var listing struct {
		Maps []mapInfo `json:"maps"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Maps) != 1 || listing.Maps[0].Name != DefaultMapName {
		t.Fatalf("initial listing = %+v, want just %q", listing.Maps, DefaultMapName)
	}

	// Create a tenant and exercise its endpoints.
	rec = do(t, s, http.MethodPost, "/maps", mapBody("tenant-a", 0))
	if rec.Code != http.StatusCreated {
		t.Fatalf("POST /maps = %d (body %s)", rec.Code, rec.Body)
	}
	var created mapInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if created.Name != "tenant-a" || created.Version != 1 || created.Regions <= 0 {
		t.Fatalf("created = %+v", created)
	}
	for _, path := range []string{
		"/maps/tenant-a", "/maps/tenant-a/stats", "/maps/tenant-a/topk?k=3",
		"/maps/tenant-a/heat?x=10&y=10", "/maps/tenant-a/histogram?bins=4",
		"/maps/tenant-a/tiles/1/0/0.png",
	} {
		if rec := do(t, s, http.MethodGet, path, ""); rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d (body %s)", path, rec.Code, rec.Body)
		}
	}

	// Mutating the tenant must not touch the default map.
	rec = do(t, s, http.MethodPost, "/maps/tenant-a/clients", `{"points":[{"x":50,"y":50}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("tenant mutation = %d (body %s)", rec.Code, rec.Body)
	}
	var mr mutateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Map != "tenant-a" || mr.Version != 2 {
		t.Errorf("mutation response %+v, want map tenant-a at version 2", mr)
	}
	if got := s.Version(); got != 1 {
		t.Errorf("default map version = %d after a tenant mutation, want 1", got)
	}

	// Deletion: tenants go away, the default map is protected.
	if rec := do(t, s, http.MethodDelete, "/maps/tenant-a", ""); rec.Code != http.StatusOK {
		t.Fatalf("DELETE tenant = %d", rec.Code)
	}
	if rec := do(t, s, http.MethodGet, "/maps/tenant-a/stats", ""); rec.Code != http.StatusNotFound {
		t.Errorf("stats of deleted map = %d, want 404", rec.Code)
	}
	if rec := do(t, s, http.MethodDelete, "/maps/default", ""); rec.Code != http.StatusForbidden {
		t.Errorf("DELETE default = %d, want 403", rec.Code)
	}
	if s.NumMaps() != 1 {
		t.Errorf("registry holds %d maps, want 1", s.NumMaps())
	}
}

func TestRegistryCreateValidation(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Map: handMap(t), MaxMaps: 2, MaxMapPoints: 20})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed", "{", http.StatusBadRequest},
		{"bad name", `{"name":"a/b","clients":[{"x":1,"y":1}],"facilities":[{"x":0,"y":0}]}`, http.StatusBadRequest},
		{"empty name", mapBody("", 0), http.StatusBadRequest},
		{"no clients", `{"name":"x","facilities":[{"x":0,"y":0}]}`, http.StatusBadRequest},
		{"no facilities", `{"name":"x","clients":[{"x":1,"y":1}]}`, http.StatusBadRequest},
		{"bad metric", `{"name":"x","clients":[{"x":1,"y":1}],"facilities":[{"x":0,"y":0}],"metric":"l7"}`, http.StatusBadRequest},
		{"dup default", mapBody(DefaultMapName, 0), http.StatusConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if rec := do(t, s, http.MethodPost, "/maps", tc.body); rec.Code != tc.want {
				t.Errorf("POST /maps (%s) = %d, want %d (body %s)", tc.name, rec.Code, tc.want, rec.Body)
			}
		})
	}
	// Registry cap: MaxMaps=2 leaves room for exactly one tenant.
	if rec := do(t, s, http.MethodPost, "/maps", mapBody("one", 0)); rec.Code != http.StatusCreated {
		t.Fatalf("first tenant = %d (body %s)", rec.Code, rec.Body)
	}
	if rec := do(t, s, http.MethodPost, "/maps", mapBody("two", 0)); rec.Code != http.StatusTooManyRequests {
		t.Errorf("tenant beyond MaxMaps = %d, want 429", rec.Code)
	}
}

// TestAliasesMatchNamedForm asserts the back-compat contract: every legacy
// endpoint answers byte-identically to its /maps/default/... form.
func TestAliasesMatchNamedForm(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Map: handMap(t), Mutable: true, TileSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	paths := []string{
		"/topk?k=3", "/heat?x=10&y=10", "/histogram?bins=4",
		"/regions?min=2", "/tiles/1/0/0.png", "/tiles/2/1/1.png",
	}
	for _, path := range paths {
		legacy := do(t, s, http.MethodGet, path, "")
		named := do(t, s, http.MethodGet, "/maps/default"+path, "")
		if legacy.Code != http.StatusOK || named.Code != http.StatusOK {
			t.Fatalf("GET %s: legacy %d, named %d", path, legacy.Code, named.Code)
		}
		if !bytes.Equal(legacy.Body.Bytes(), named.Body.Bytes()) {
			t.Errorf("GET %s differs between the alias and /maps/default form", path)
		}
	}
	// /stats carries a wall-clock uptime, so compare it structurally.
	var legacySt, namedSt statsResponse
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/stats", "").Body.Bytes(), &legacySt); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(do(t, s, http.MethodGet, "/maps/default/stats", "").Body.Bytes(), &namedSt); err != nil {
		t.Fatal(err)
	}
	legacySt.UptimeSeconds, namedSt.UptimeSeconds = 0, 0
	if legacySt != namedSt {
		t.Errorf("/stats differs between forms:\n alias %+v\n named %+v", legacySt, namedSt)
	}
	// Batched heat and mutations work through both forms, sharing version.
	if rec := do(t, s, http.MethodPost, "/maps/default/heat/batch", `{"points":[{"x":10,"y":10}]}`); rec.Code != http.StatusOK {
		t.Errorf("named heat/batch = %d", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/clients", `{"points":[{"x":50,"y":55}]}`); rec.Code != http.StatusOK {
		t.Errorf("alias mutation = %d", rec.Code)
	}
	rec := do(t, s, http.MethodGet, "/maps/default/stats", "")
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Version != 2 || st.Name != DefaultMapName {
		t.Errorf("named stats after alias mutation = %+v, want version 2", st)
	}
}

// tileAndStats snapshots the observable state the persistence tests compare:
// the /stats version and a set of tile bodies.
func tileAndStats(t *testing.T, s *Server, paths []string) (uint64, map[string][]byte) {
	t.Helper()
	rec := do(t, s, http.MethodGet, "/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /stats = %d", rec.Code)
	}
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	tiles := make(map[string][]byte, len(paths))
	for _, path := range paths {
		rec := do(t, s, http.MethodGet, path, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d", path, rec.Code)
		}
		tiles[path] = append([]byte(nil), rec.Body.Bytes()...)
	}
	return st.Version, tiles
}

// TestWALReplayConvergesAfterCrash is the acceptance criterion: a mutable
// server replaying its WAL after an unclean shutdown converges to the same
// map version and tile bytes as the uninterrupted server.
func TestWALReplayConvergesAfterCrash(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	a, err := New(Config{Map: handMap(t), Mutable: true, TileSize: 32, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mutations := []struct{ method, path, body string }{
		{http.MethodPost, "/clients", `{"points":[{"x":91,"y":91},{"x":11,"y":12}]}`},
		{http.MethodDelete, "/clients", `{"indexes":[3]}`},
		{http.MethodPost, "/facilities", `{"points":[{"x":55,"y":45}]}`},
		{http.MethodDelete, "/facilities", `{"indexes":[1]}`},
	}
	for _, mu := range mutations {
		if rec := do(t, a, mu.method, mu.path, mu.body); rec.Code != http.StatusOK {
			t.Fatalf("%s %s = %d (body %s)", mu.method, mu.path, rec.Code, rec.Body)
		}
	}
	// Two batched requests through the ingestion path: each lands in the WAL
	// as one multi-op record that replay must apply as a unit.
	batches := []string{
		`{"ops":[{"add_clients":[{"x":30,"y":30},{"x":31,"y":31}]},{"remove_clients":[2]}]}`,
		`{"ops":[{"add_facilities":[{"x":60,"y":60}]},{"add_clients":[{"x":61,"y":61}]},{"remove_facilities":[0]}]}`,
	}
	for _, body := range batches {
		if rec := do(t, a, http.MethodPost, "/mutations", body); rec.Code != http.StatusOK {
			t.Fatalf("POST /mutations = %d (body %s)", rec.Code, rec.Body)
		}
	}
	tilePaths := []string{"/tiles/0/0/0.png", "/tiles/2/0/0.png", "/tiles/2/3/3.png", "/tiles/3/2/5.png"}
	wantVersion, wantTiles := tileAndStats(t, a, tilePaths)
	if wantVersion != uint64(len(mutations)+len(batches)+1) {
		t.Fatalf("uninterrupted server at version %d, want %d", wantVersion, len(mutations)+len(batches)+1)
	}
	// Crash: server a is abandoned without Close/SaveAll. The on-disk state
	// is the initial snapshot (version 1) plus the WAL.
	b, err := New(Config{Mutable: true, TileSize: 32, SnapshotDir: dir, Load: true})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	gotVersion, gotTiles := tileAndStats(t, b, tilePaths)
	if gotVersion != wantVersion {
		t.Errorf("restarted server at version %d, want %d", gotVersion, wantVersion)
	}
	for _, path := range tilePaths {
		if !bytes.Equal(gotTiles[path], wantTiles[path]) {
			t.Errorf("tile %s differs after WAL replay", path)
		}
	}
	// The replayed server keeps accepting (and logging) mutations.
	if rec := do(t, b, http.MethodPost, "/clients", `{"points":[{"x":20,"y":80}]}`); rec.Code != http.StatusOK {
		t.Fatalf("mutation after replay = %d (body %s)", rec.Code, rec.Body)
	}
	if got := b.Version(); got != wantVersion+1 {
		t.Errorf("version after post-replay mutation = %d, want %d", got, wantVersion+1)
	}
}

// TestSnapshotSaveCompactsWAL asserts a clean shutdown folds the WAL into
// the snapshot: the restarted server loads the snapshot alone.
func TestSnapshotSaveCompactsWAL(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	a, err := New(Config{Map: handMap(t), Mutable: true, TileSize: 32, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, a, http.MethodPost, "/clients", `{"points":[{"x":91,"y":91}]}`); rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	tilePaths := []string{"/tiles/0/0/0.png", "/tiles/2/3/3.png"}
	wantVersion, wantTiles := tileAndStats(t, a, tilePaths)
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// After compaction the snapshot itself carries version 2 and the WAL is
	// empty.
	snap, err := snapshot.ReadFile(snapshot.MapPath(dir, DefaultMapName))
	if err != nil {
		t.Fatal(err)
	}
	if snap.MapVersion != wantVersion {
		t.Errorf("compacted snapshot at version %d, want %d", snap.MapVersion, wantVersion)
	}
	_, records, err := snapshot.OpenWAL(snapshot.WALPath(dir, DefaultMapName))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Errorf("WAL holds %d records after compaction, want 0", len(records))
	}

	b, err := New(Config{Mutable: true, SnapshotDir: dir, Load: true, TileSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	gotVersion, gotTiles := tileAndStats(t, b, tilePaths)
	if gotVersion != wantVersion {
		t.Errorf("restarted version = %d, want %d", gotVersion, wantVersion)
	}
	for _, path := range tilePaths {
		if !bytes.Equal(gotTiles[path], wantTiles[path]) {
			t.Errorf("tile %s differs after snapshot load", path)
		}
	}
}

// TestCreatedMapsPersistAcrossRestart asserts tenants created over HTTP
// survive a restart, and deleted tenants stay deleted.
func TestCreatedMapsPersistAcrossRestart(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	a, err := New(Config{Map: handMap(t), Mutable: true, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "beta"} {
		if rec := do(t, a, http.MethodPost, "/maps", mapBody(name, 5)); rec.Code != http.StatusCreated {
			t.Fatalf("create %s = %d (body %s)", name, rec.Code, rec.Body)
		}
	}
	if rec := do(t, a, http.MethodDelete, "/maps/beta", ""); rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	// Mutate alpha so its durable state is snapshot+WAL.
	if rec := do(t, a, http.MethodPost, "/maps/alpha/clients", `{"points":[{"x":60,"y":60}]}`); rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}

	b, err := New(Config{Mutable: true, SnapshotDir: dir, Load: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.NumMaps(); got != 2 {
		t.Errorf("restarted registry holds %d maps, want 2 (default, alpha)", got)
	}
	if rec := do(t, b, http.MethodGet, "/maps/beta/stats", ""); rec.Code != http.StatusNotFound {
		t.Errorf("deleted map resurrected: %d", rec.Code)
	}
	rec := do(t, b, http.MethodGet, "/maps/alpha/stats", "")
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Version != 2 || st.Clients != 9 {
		t.Errorf("alpha after restart = version %d, %d clients; want 2 and 9", st.Version, st.Clients)
	}
}

// TestForcedSnapshotEndpoint asserts POST /maps/{map}/snapshot persists on
// demand and refuses without a snapshot directory.
func TestForcedSnapshotEndpoint(t *testing.T) {
	t.Parallel()
	noDir, err := New(Config{Map: handMap(t)})
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, noDir, http.MethodPost, "/maps/default/snapshot", ""); rec.Code != http.StatusForbidden {
		t.Errorf("snapshot without dir = %d, want 403", rec.Code)
	}

	dir := t.TempDir()
	s, err := New(Config{Map: handMap(t), Mutable: true, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, s, http.MethodPost, "/clients", `{"points":[{"x":91,"y":91}]}`); rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/maps/default/snapshot", ""); rec.Code != http.StatusOK {
		t.Fatalf("forced snapshot = %d (body %s)", rec.Code, rec.Body)
	}
	snap, err := snapshot.ReadFile(snapshot.MapPath(dir, DefaultMapName))
	if err != nil {
		t.Fatal(err)
	}
	if snap.MapVersion != 2 {
		t.Errorf("forced snapshot at version %d, want 2", snap.MapVersion)
	}
	if fi, err := os.Stat(snapshot.WALPath(dir, DefaultMapName)); err != nil || fi.Size() != int64(walFileHeaderLen(t)) {
		t.Errorf("WAL not reset after forced snapshot (size %v, err %v)", fi, err)
	}
}

// walFileHeaderLen exposes the WAL header length without exporting it.
func walFileHeaderLen(t *testing.T) int {
	t.Helper()
	dir := t.TempDir()
	w, _, err := snapshot.OpenWAL(snapshot.WALPath(dir, "probe"))
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	fi, err := os.Stat(snapshot.WALPath(dir, "probe"))
	if err != nil {
		t.Fatal(err)
	}
	return int(fi.Size())
}

// TestReadOnlyServerReplaysWAL asserts a read-only restart still applies the
// log (the log is state), it just stops appending.
func TestReadOnlyServerReplaysWAL(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	a, err := New(Config{Map: handMap(t), Mutable: true, TileSize: 32, SnapshotDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, a, http.MethodPost, "/clients", `{"points":[{"x":91,"y":91}]}`); rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	wantVersion, wantTiles := tileAndStats(t, a, []string{"/tiles/2/3/3.png"})

	b, err := New(Config{SnapshotDir: dir, Load: true, TileSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	gotVersion, gotTiles := tileAndStats(t, b, []string{"/tiles/2/3/3.png"})
	if gotVersion != wantVersion {
		t.Errorf("read-only replay version = %d, want %d", gotVersion, wantVersion)
	}
	if !bytes.Equal(gotTiles["/tiles/2/3/3.png"], wantTiles["/tiles/2/3/3.png"]) {
		t.Errorf("tile differs after read-only replay")
	}
	if rec := do(t, b, http.MethodPost, "/clients", `{"points":[{"x":1,"y":1}]}`); rec.Code != http.StatusForbidden {
		t.Errorf("mutation on read-only server = %d, want 403", rec.Code)
	}
}

// TestPerMapTileCachesAreIsolated asserts one tenant's renders and cache
// entries never show up in another tenant's counters.
func TestPerMapTileCachesAreIsolated(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Map: handMap(t), TileSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, s, http.MethodPost, "/maps", mapBody("other", 0)); rec.Code != http.StatusCreated {
		t.Fatal(rec.Code)
	}
	for i := 0; i < 3; i++ {
		if rec := do(t, s, http.MethodGet, "/maps/other/tiles/1/0/0.png", ""); rec.Code != http.StatusOK {
			t.Fatal(rec.Code)
		}
	}
	if got := s.RenderCalls(); got != 0 {
		t.Errorf("default map rendered %d tiles from another tenant's requests", got)
	}
	other := s.lookup("other")
	if got := other.renders.Load(); got != 1 {
		t.Errorf("tenant renders = %d, want 1 (then cache hits)", got)
	}
	if got := s.def().cache.len(); got != 0 {
		t.Errorf("default cache holds %d tiles, want 0", got)
	}
}
