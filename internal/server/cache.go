package server

import (
	"container/list"
	"fmt"
	"sync"
)

// tileKey addresses one cached tile. The version is the map version the tile
// was rendered from: mutation bumps the version, so a render that was already
// in flight when the map swapped can only ever complete under its old key,
// never poisoning the new version's cache.
type tileKey struct {
	version uint64
	z, x, y int
}

// tileCache is a fixed-capacity LRU cache of encoded tiles with
// single-flight de-duplication: when several requests miss on the same key
// concurrently, one renders and the rest wait for its result instead of
// rendering the same tile in parallel.
type tileCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[tileKey]*list.Element
	inflight map[tileKey]*flightCall

	hits, misses, waited uint64
}

// tileData is one cached tile: the encoded PNG and its precomputed ETag,
// so warm requests and 304 responses never re-hash the bytes.
type tileData struct {
	png  []byte
	etag string
}

type cacheEntry struct {
	key tileKey
	t   *tileData
}

type flightCall struct {
	done chan struct{}
	t    *tileData
	err  error
}

func newTileCache(capacity int) *tileCache {
	return &tileCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[tileKey]*list.Element),
		inflight: make(map[tileKey]*flightCall),
	}
}

// get returns the cached tile for key, rendering it with render on a miss.
// The second return reports whether the tile came from the cache (a wait on
// another request's in-flight render counts as a cache hit: nothing was
// rendered on behalf of this caller).
func (c *tileCache) get(key tileKey, render func() (*tileData, error)) (*tileData, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		t := el.Value.(*cacheEntry).t
		c.mu.Unlock()
		return t, true, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.waited++
		c.mu.Unlock()
		<-call.done
		return call.t, true, call.err
	}
	call := &flightCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.misses++
	c.mu.Unlock()

	// A panicking render must still release the waiters and clear the
	// in-flight entry, or the key is wedged until restart; surface it as an
	// error instead.
	call.t, call.err = func() (t *tileData, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("render panicked: %v", r)
			}
		}()
		return render()
	}()
	close(call.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, t: call.t})
		for c.ll.Len() > c.capacity {
			last := c.ll.Back()
			c.ll.Remove(last)
			delete(c.items, last.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	return call.t, false, call.err
}

// migrate carries the cache across a map swap: entries of version `from` for
// which keep returns true are re-keyed to version `to` (preserving recency
// order), everything else — dirty tiles, leftovers of older versions — is
// dropped. In-flight renders are untouched: they complete under their old
// version and age out.
func (c *tileCache) migrate(from, to uint64, keep func(z, x, y int) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.version == from && keep(e.key.z, e.key.x, e.key.y) {
			delete(c.items, e.key)
			e.key.version = to
			c.items[e.key] = el
			continue
		}
		c.ll.Remove(el)
		delete(c.items, e.key)
	}
}

// stats returns the hit/miss/waited counters.
func (c *tileCache) stats() (hits, misses, waited uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.waited
}

// len returns the number of cached tiles.
func (c *tileCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
