// Package server implements heatmapd's HTTP layer: a long-running service
// that owns one computed heatmap.Map and serves it to many readers. One
// expensive Build is amortized across arbitrarily many cheap requests —
// slippy-map raster tiles (GET /tiles/{z}/{x}/{y}.png), point and batched
// influence queries (GET /heat, POST /heat/batch), region exploration
// (GET /topk, GET /regions) and operational introspection (GET /healthz,
// GET /stats).
//
// Tiles are rendered through the map's shared render.Renderer (the
// point-enclosure index is built once), normalized against the map-wide heat
// range so adjacent tiles shade consistently, and cached in a fixed-size LRU
// with single-flight de-duplication: concurrent requests for the same cold
// tile trigger exactly one render. Tile bytes depend only on the NN-circles
// and the influence measure, so responses are byte-identical regardless of
// how many workers swept the map.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rnnheatmap/heatmap"
	"rnnheatmap/internal/geom"
	"rnnheatmap/internal/render"
)

// Config configures a Server.
type Config struct {
	// Map is the heat map to serve. Required.
	Map *heatmap.Map
	// TileSize is the tile edge length in pixels; 0 means 256.
	TileSize int
	// TileCacheSize is the LRU capacity in tiles; 0 means 512.
	TileCacheSize int
	// ColorMap renders tiles; nil means render.Grayscale (darker = hotter,
	// as in the paper's figures).
	ColorMap render.ColorMap
	// MaxBatch caps the number of points accepted by POST /heat/batch;
	// 0 means 10000.
	MaxBatch int
	// MaxRegions caps the number of regions returned by GET /regions and
	// GET /topk; 0 means 10000.
	MaxRegions int
}

// Server serves one heat map over HTTP. It is an http.Handler; all state is
// read-only after New except the tile cache and counters, so it is safe for
// concurrent use.
type Server struct {
	m        *heatmap.Map
	rd       *render.Renderer
	grid     grid
	tileSize int
	cm       render.ColorMap
	// heatLo and heatHi are the map-wide heat range used to normalize every
	// tile, so a region renders the same shade on whichever tile it lands.
	heatLo, heatHi float64
	// summary is the heat distribution over the labeled regions, immutable
	// after Build and therefore computed once rather than per /stats poll.
	summary    heatmap.Summary
	maxBatch   int
	maxRegions int
	cache      *tileCache
	mux        *http.ServeMux
	started    time.Time
}

// New builds a Server for the given configuration.
func New(cfg Config) (*Server, error) {
	if cfg.Map == nil {
		return nil, errors.New("server: Config.Map is required")
	}
	rd, err := cfg.Map.Renderer()
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if cfg.TileSize == 0 {
		cfg.TileSize = 256
	}
	if cfg.TileSize < 1 || cfg.TileSize > 4096 {
		return nil, fmt.Errorf("server: tile size %d out of range [1, 4096]", cfg.TileSize)
	}
	if cfg.TileCacheSize <= 0 {
		cfg.TileCacheSize = 512
	}
	if cfg.ColorMap == nil {
		cfg.ColorMap = render.Grayscale
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 10000
	}
	if cfg.MaxRegions <= 0 {
		cfg.MaxRegions = 10000
	}
	s := &Server{
		m:          cfg.Map,
		rd:         rd,
		grid:       newGrid(rd.Bounds()),
		tileSize:   cfg.TileSize,
		cm:         cfg.ColorMap,
		maxBatch:   cfg.MaxBatch,
		maxRegions: cfg.MaxRegions,
		cache:      newTileCache(cfg.TileCacheSize),
		mux:        http.NewServeMux(),
		started:    time.Now(),
	}
	s.summary = cfg.Map.Summary()
	s.heatLo, s.heatHi = heatRange(cfg.Map, s.summary)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /heat", s.handleHeat)
	s.mux.HandleFunc("POST /heat/batch", s.handleHeatBatch)
	s.mux.HandleFunc("GET /topk", s.handleTopK)
	s.mux.HandleFunc("GET /regions", s.handleRegions)
	s.mux.HandleFunc("GET /histogram", s.handleHistogram)
	s.mux.HandleFunc("GET /tiles/{z}/{x}/{y}", s.handleTile)
	return s, nil
}

// heatRange returns the fixed normalization range for tiles: from the
// smaller of the empty-set heat and the coolest region to the map maximum.
// For the size measure this is simply [0, max], but signed measures (e.g.
// capacity gain) can dip below the empty-set value.
func heatRange(m *heatmap.Map, sum heatmap.Summary) (lo, hi float64) {
	outside := m.Bounds().Expand(1).Corners()
	lo, _ = m.HeatAt(outside[0]) // empty RNN set
	hi = lo
	if sum.Count > 0 {
		lo = math.Min(lo, sum.MinHeat)
		hi = math.Max(hi, sum.MaxHeat)
	}
	return lo, hi
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Bounds returns the data bounds of the served map.
func (s *Server) Bounds() heatmap.Rect { return s.rd.Bounds() }

// RenderCalls returns how many tile renders have actually executed; warm
// cache hits do not increment it. Exposed for tests and /stats.
func (s *Server) RenderCalls() int64 { return s.rd.Calls() }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseFloat parses a finite float query parameter.
func parseFloat(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("query parameter %q is not a finite number: %q", name, raw)
	}
	return v, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"regions": s.m.NumRegions(),
	})
}

// statsResponse is the GET /stats payload.
type statsResponse struct {
	Measure       string      `json:"measure"`
	Regions       int         `json:"regions"`
	MaxHeat       float64     `json:"max_heat"`
	Bounds        rectJSON    `json:"bounds"`
	UptimeSeconds float64     `json:"uptime_seconds"`
	Build         buildStats  `json:"build"`
	Heat          heatSummary `json:"heat"`
	Tiles         tileStats   `json:"tiles"`
}

// heatSummary is the heat distribution over the labeled regions.
type heatSummary struct {
	DistinctSets  int     `json:"distinct_sets"`
	MinHeat       float64 `json:"min_heat"`
	MeanHeat      float64 `json:"mean_heat"`
	MaxHeat       float64 `json:"max_heat"`
	MaxRNNSetSize int     `json:"max_rnn_set_size"`
}

// buildStats mirrors the core.Stats counters of the Region Coloring run.
type buildStats struct {
	Circles        int     `json:"circles"`
	Events         int     `json:"events"`
	Labelings      int     `json:"labelings"`
	InfluenceCalls int     `json:"influence_calls"`
	MaxRNNSetSize  int     `json:"max_rnn_set_size"`
	DurationMS     float64 `json:"duration_ms"`
}

type tileStats struct {
	Size        int    `json:"size_px"`
	Cached      int    `json:"cached"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Coalesced   uint64 `json:"coalesced"`
	Renders     int64  `json:"renders"`
}

type rectJSON struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

func toRectJSON(r geom.Rect) rectJSON {
	return rectJSON{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.m.Stats()
	maxHeat, _ := s.m.MaxHeat()
	sum := s.summary
	hits, misses, waited := s.cache.stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Measure:       s.m.MeasureName(),
		Regions:       s.m.NumRegions(),
		MaxHeat:       maxHeat,
		Bounds:        toRectJSON(s.rd.Bounds()),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Build: buildStats{
			Circles:        cs.Circles,
			Events:         cs.Events,
			Labelings:      cs.Labelings,
			InfluenceCalls: cs.InfluenceCalls,
			MaxRNNSetSize:  cs.MaxRNNSetSize,
			DurationMS:     float64(cs.Duration) / float64(time.Millisecond),
		},
		Heat: heatSummary{
			DistinctSets:  sum.DistinctSets,
			MinHeat:       sum.MinHeat,
			MeanHeat:      sum.MeanHeat,
			MaxHeat:       sum.MaxHeat,
			MaxRNNSetSize: sum.MaxRNNSize,
		},
		Tiles: tileStats{
			Size:        s.tileSize,
			Cached:      s.cache.len(),
			CacheHits:   hits,
			CacheMisses: misses,
			Coalesced:   waited,
			Renders:     s.rd.Calls(),
		},
	})
}

// heatResponse is one influence query result.
type heatResponse struct {
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	Heat float64 `json:"heat"`
	RNN  []int   `json:"rnn"`
}

func nonNil(rnn []int) []int {
	if rnn == nil {
		return []int{}
	}
	return rnn
}

func (s *Server) handleHeat(w http.ResponseWriter, r *http.Request) {
	x, err := parseFloat(r, "x")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	y, err := parseFloat(r, "y")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	heat, rnn := s.m.HeatAt(heatmap.Pt(x, y))
	writeJSON(w, http.StatusOK, heatResponse{X: x, Y: y, Heat: heat, RNN: nonNil(rnn)})
}

// batchRequest is the POST /heat/batch payload.
type batchRequest struct {
	Points []struct {
		X float64 `json:"x"`
		Y float64 `json:"y"`
	} `json:"points"`
}

func (s *Server) handleHeatBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "request has no points")
		return
	}
	if len(req.Points) > s.maxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d points exceeds the limit of %d", len(req.Points), s.maxBatch)
		return
	}
	ps := make([]heatmap.Point, len(req.Points))
	for i, p := range req.Points {
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			writeError(w, http.StatusBadRequest, "point %d is not finite", i)
			return
		}
		ps[i] = heatmap.Pt(p.X, p.Y)
	}
	heats, rnns := s.m.HeatAtBatch(ps)
	results := make([]heatResponse, len(ps))
	for i := range ps {
		results[i] = heatResponse{X: ps[i].X, Y: ps[i].Y, Heat: heats[i], RNN: nonNil(rnns[i])}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// regionJSON is one labeled region in an API response.
type regionJSON struct {
	Heat  float64   `json:"heat"`
	Point pointJSON `json:"point"`
	RNN   []int     `json:"rnn"`
}

type pointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

func toRegionJSON(rs []heatmap.Region) []regionJSON {
	out := make([]regionJSON, len(rs))
	for i, r := range rs {
		out[i] = regionJSON{
			Heat:  r.Heat,
			Point: pointJSON{X: r.Point.X, Y: r.Point.Y},
			RNN:   nonNil(r.RNN),
		}
	}
	return out
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "query parameter \"k\" must be a positive integer, got %q", raw)
			return
		}
		k = v
	}
	if k > s.maxRegions {
		k = s.maxRegions
	}
	regions := s.m.TopK(k)
	writeJSON(w, http.StatusOK, map[string]any{
		"k":       k,
		"regions": toRegionJSON(regions),
	})
}

func (s *Server) handleRegions(w http.ResponseWriter, r *http.Request) {
	minHeat, err := parseFloat(r, "min")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	regions := s.m.AboveThreshold(minHeat)
	total := len(regions)
	truncated := false
	if total > s.maxRegions {
		regions = regions[:s.maxRegions]
		truncated = true
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"min":       minHeat,
		"total":     total,
		"truncated": truncated,
		"regions":   toRegionJSON(regions),
	})
}

// handleHistogram serves the heat distribution as equal-width bins, the
// data behind a dashboard's heat legend.
func (s *Server) handleHistogram(w http.ResponseWriter, r *http.Request) {
	bins := 20
	if raw := r.URL.Query().Get("bins"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 || v > 1000 {
			writeError(w, http.StatusBadRequest, "query parameter \"bins\" must be an integer in [1, 1000], got %q", raw)
			return
		}
		bins = v
	}
	edges, counts := s.m.HeatHistogram(bins)
	if edges == nil {
		edges = []float64{}
	}
	if counts == nil {
		counts = []int{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"bins":   bins,
		"edges":  edges,
		"counts": counts,
	})
}

func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	yRaw, ok := strings.CutSuffix(r.PathValue("y"), ".png")
	if !ok {
		writeError(w, http.StatusBadRequest, "tile path must end in .png")
		return
	}
	z, errZ := strconv.Atoi(r.PathValue("z"))
	x, errX := strconv.Atoi(r.PathValue("x"))
	y, errY := strconv.Atoi(yRaw)
	if errZ != nil || errX != nil || errY != nil {
		writeError(w, http.StatusBadRequest, "tile coordinates must be integers: /tiles/{z}/{x}/{y}.png")
		return
	}
	if !s.grid.valid(z, x, y) {
		writeError(w, http.StatusNotFound, "tile %d/%d/%d outside the pyramid (zoom 0..%d, 2^z tiles per axis)", z, x, y, MaxZoom)
		return
	}
	key := fmt.Sprintf("%d/%d/%d/%s", z, x, y, s.m.MeasureName())
	t, _, err := s.cache.get(key, func() (*tileData, error) { return s.renderTile(z, x, y) })
	if err != nil {
		writeError(w, http.StatusInternalServerError, "rendering tile: %v", err)
		return
	}
	w.Header().Set("ETag", t.etag)
	w.Header().Set("Cache-Control", "public, max-age=3600")
	if r.Header.Get("If-None-Match") == t.etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	w.Header().Set("Content-Length", strconv.Itoa(len(t.png)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(t.png)
}

// renderTile rasterizes one tile, encodes it as PNG normalizing against the
// map-wide heat range, and stamps the ETag once.
func (s *Server) renderTile(z, x, y int) (*tileData, error) {
	raster, err := s.rd.Render(s.grid.tileBounds(z, x, y), s.tileSize, s.tileSize)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := raster.WritePNGScaled(&buf, s.cm, s.heatLo, s.heatHi); err != nil {
		return nil, err
	}
	h := fnv.New64a()
	_, _ = h.Write(buf.Bytes())
	etag := fmt.Sprintf("%q", strconv.FormatUint(h.Sum64(), 16))
	return &tileData{png: buf.Bytes(), etag: etag}, nil
}
