// Package server implements heatmapd's HTTP layer: a long-running,
// multi-tenant service that owns a registry of computed heatmap.Maps and
// serves them to many readers. One expensive Build (or a millisecond
// snapshot load) is amortized across arbitrarily many cheap requests —
// slippy-map raster tiles, point and batched influence queries, region
// exploration and operational introspection.
//
// Every data endpoint exists in two forms: the tenant form
// /maps/{name}/... and a legacy alias without the prefix that resolves to
// the map named "default", so pre-registry clients keep working unchanged:
//
//	GET    /maps                          list maps
//	POST   /maps                          create a map from uploaded points
//	GET    /maps/{map}                    map info
//	DELETE /maps/{map}                    delete a map (not "default")
//	POST   /maps/{map}/snapshot           force-persist the map now
//	GET    /maps/{map}/tiles/{z}/{x}/{y}.png   (alias /tiles/...)
//	GET    /maps/{map}/heat               (alias /heat)
//	POST   /maps/{map}/heat/batch         (alias /heat/batch)
//	GET    /maps/{map}/topk               (alias /topk)
//	GET    /maps/{map}/regions            (alias /regions)
//	GET    /maps/{map}/histogram          (alias /histogram)
//	GET    /maps/{map}/optimal            (alias /optimal)
//	POST   /maps/{map}/optimize           (alias /optimize)
//	GET    /maps/{map}/stats              (alias /stats)
//	POST/DELETE /maps/{map}/clients, /maps/{map}/facilities   (aliases too)
//	POST   /maps/{map}/mutations          batched mutation ops (alias /mutations)
//
// A mutable server (Config.Mutable) accepts live set updates applied through
// heatmap.ApplyDelta's copy-on-write semantics: per map, writers build a new
// map (resweeping only the dirty part of the arrangement) and atomically
// swap it in, so readers never lock and never observe a half-updated map.
// Each swap bumps that map's version. Maps are isolated: every instance has
// its own writer lock and its own version-keyed tile cache, so a write burst
// against one tenant never blocks reads or writes on another.
//
// With Config.SnapshotDir set the registry is durable: each map is saved as
// a versioned binary snapshot (internal/snapshot), every applied mutation is
// appended to the map's write-ahead log before it becomes visible, and
// Config.Load restores snapshot+WAL on startup — so a restarted server
// reports the same map version and serves byte-identical tiles as the one
// that crashed.
//
// Tiles are rendered through the current map's shared render.Renderer,
// normalized against the map-wide heat range so adjacent tiles shade
// consistently, and cached per map in a fixed-size LRU with single-flight
// de-duplication keyed by map version. On a mutation, cached tiles that do
// not intersect the update's dirty rectangle are carried over to the new
// version; the rest are invalidated (the whole cache is, whenever the update
// moved the tile grid or the normalization range). Tile bytes depend only on
// the NN-circles and the influence measure, so responses are byte-identical
// regardless of how many workers swept the map — or whether it was swept at
// all rather than loaded from a snapshot.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"rnnheatmap/heatmap"
	"rnnheatmap/internal/geom"
	"rnnheatmap/internal/render"
)

// Config configures a Server.
type Config struct {
	// Map is the initial "default" map. Required unless Load restores a
	// default map from SnapshotDir.
	Map *heatmap.Map
	// Mutable enables the live mutation API (POST/DELETE /clients and
	// /facilities, per map). When false those endpoints answer 403.
	Mutable bool
	// TileSize is the tile edge length in pixels; 0 means 256.
	TileSize int
	// TileCacheSize is the per-map LRU capacity in tiles; 0 means 512.
	TileCacheSize int
	// ColorMap renders tiles; nil means render.Grayscale (darker = hotter,
	// as in the paper's figures).
	ColorMap render.ColorMap
	// MaxBatch caps the number of points accepted by POST /heat/batch and the
	// points/indexes accepted by one mutation request; 0 means 10000.
	MaxBatch int
	// MaxRegions caps the number of regions returned by GET /regions and
	// GET /topk; 0 means 10000.
	MaxRegions int
	// MaxMaps caps the registry size; 0 means 64.
	MaxMaps int
	// MaxMapPoints caps clients+facilities of a map created via POST /maps;
	// 0 means 200000.
	MaxMapPoints int
	// CoalesceWindow is how long each map's ingestion writer waits for more
	// POST /mutations batches before group-committing what it has gathered;
	// 0 means 2ms, negative means never wait (commit whatever is already
	// queued).
	CoalesceWindow time.Duration
	// CoalesceOps caps the total ops gathered into one group commit; 0 means
	// 512.
	CoalesceOps int
	// IngestQueue is the per-map admission queue capacity for POST
	// /mutations; a full queue answers 429 with Retry-After. 0 means 128.
	IngestQueue int
	// SnapshotDir, when non-empty, makes the registry durable: maps are
	// saved there as binary snapshots and (on mutable servers) every applied
	// mutation is write-ahead logged. The directory is created if missing.
	SnapshotDir string
	// Load restores every map found in SnapshotDir at startup, replaying
	// each map's WAL on top of its snapshot. Requires SnapshotDir.
	Load bool
	// SnapshotFormat selects the on-disk layout for saved maps; the zero
	// value means the default (format v2, the mmap-able layout). Set
	// heatmap.SnapshotV1 as a rollback escape hatch for binaries that
	// predate format v2. Loading accepts both formats regardless.
	SnapshotFormat heatmap.SnapshotFormat
	// Cluster, when non-nil, runs this server as one node of a static
	// cluster: maps are placed onto nodes by consistent hashing, owners
	// ship their WAL to read replicas, and requests for maps placed
	// elsewhere are proxied (reads) or 307-redirected (writes). Requires
	// Mutable, SnapshotDir and the v2 snapshot format. See cluster.go.
	Cluster *ClusterOptions
}

// mapState is one immutable snapshot of a served map and everything derived
// from it. Readers load the current snapshot once per request from their
// instance's atomic pointer; writers construct a fresh snapshot and swap.
type mapState struct {
	m       *heatmap.Map
	rd      *render.Renderer
	grid    grid
	version uint64
	// heatLo and heatHi are the map-wide heat range used to normalize every
	// tile, so a region renders the same shade on whichever tile it lands.
	heatLo, heatHi float64
	// summary is the heat distribution over the labeled regions, immutable
	// per snapshot and therefore computed once rather than per /stats poll.
	summary heatmap.Summary
}

func newMapState(m *heatmap.Map, version uint64) (*mapState, error) {
	rd, err := m.Renderer()
	if err != nil {
		return nil, err
	}
	st := &mapState{
		m:       m,
		rd:      rd,
		grid:    newGrid(rd.Bounds()),
		version: version,
		summary: m.Summary(),
	}
	st.heatLo, st.heatHi = heatRange(m, st.summary)
	return st, nil
}

// Server serves a registry of heat maps over HTTP. It is an http.Handler;
// readers are lock-free against each map's current snapshot, mutations are
// serialized per map by that instance's writer lock.
type Server struct {
	mutable       bool
	tileSize      int
	tileCacheSize int
	cm            render.ColorMap
	maxBatch      int
	maxRegions    int
	maxMaps       int
	maxMapPoints  int
	snapshotDir   string
	snapFormat    heatmap.SnapshotFormat

	coalesceWindow time.Duration
	coalesceOps    int
	ingestQueue    int

	mu   sync.RWMutex
	maps map[string]*mapInstance
	// creating holds names reserved by in-flight POST /maps builds, so
	// concurrent same-name creates are refused before paying a multi-second
	// Build, and the registry cap bounds in-flight builds too.
	creating map[string]struct{}

	mux *http.ServeMux
	// routeList records every registered (method, unversioned path) pair;
	// each also exists under /v1. The OpenAPI contract test walks it.
	routeList [][2]string
	started   time.Time

	// cluster is the cluster-mode runtime (nil on single-node servers):
	// placement ring, peer health, request routing, WAL shipping and the
	// replica manager. See cluster.go.
	cluster *clusterNode
}

// New builds a Server for the given configuration.
func New(cfg Config) (*Server, error) {
	if cfg.TileSize == 0 {
		cfg.TileSize = 256
	}
	if cfg.TileSize < 1 || cfg.TileSize > 4096 {
		return nil, fmt.Errorf("server: tile size %d out of range [1, 4096]", cfg.TileSize)
	}
	if cfg.TileCacheSize <= 0 {
		cfg.TileCacheSize = 512
	}
	if cfg.ColorMap == nil {
		cfg.ColorMap = render.Grayscale
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 10000
	}
	if cfg.MaxRegions <= 0 {
		cfg.MaxRegions = 10000
	}
	if cfg.MaxMaps <= 0 {
		cfg.MaxMaps = 64
	}
	if cfg.MaxMapPoints <= 0 {
		cfg.MaxMapPoints = 200000
	}
	if cfg.CoalesceWindow == 0 {
		cfg.CoalesceWindow = 2 * time.Millisecond
	}
	if cfg.CoalesceOps <= 0 {
		cfg.CoalesceOps = 512
	}
	if cfg.IngestQueue <= 0 {
		cfg.IngestQueue = 128
	}
	if cfg.Load && cfg.SnapshotDir == "" {
		return nil, errors.New("server: Config.Load requires Config.SnapshotDir")
	}
	switch cfg.SnapshotFormat {
	case 0, heatmap.SnapshotV1, heatmap.SnapshotV2:
	default:
		return nil, fmt.Errorf("server: unknown snapshot format %d", cfg.SnapshotFormat)
	}
	if cfg.SnapshotFormat == 0 {
		cfg.SnapshotFormat = heatmap.SnapshotV2
	}
	if cfg.Cluster != nil {
		if err := cfg.Cluster.validate(&cfg); err != nil {
			return nil, err
		}
	}
	s := &Server{
		mutable:       cfg.Mutable,
		tileSize:      cfg.TileSize,
		tileCacheSize: cfg.TileCacheSize,
		cm:            cfg.ColorMap,
		maxBatch:      cfg.MaxBatch,
		maxRegions:    cfg.MaxRegions,
		maxMaps:       cfg.MaxMaps,
		maxMapPoints:  cfg.MaxMapPoints,
		snapshotDir:   cfg.SnapshotDir,
		snapFormat:    cfg.SnapshotFormat,

		coalesceWindow: cfg.CoalesceWindow,
		coalesceOps:    cfg.CoalesceOps,
		ingestQueue:    cfg.IngestQueue,
		maps:           make(map[string]*mapInstance),
		creating:       make(map[string]struct{}),
		mux:            http.NewServeMux(),
		started:        time.Now(),
	}
	if s.snapshotDir != "" {
		if err := os.MkdirAll(s.snapshotDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: creating snapshot dir: %w", err)
		}
	}
	if cfg.Load {
		if err := s.loadMaps(); err != nil {
			return nil, err
		}
	}
	if s.def() == nil {
		if cfg.Map == nil {
			if cfg.Load {
				return nil, fmt.Errorf("server: no default map: Config.Map is nil and %s holds no %q snapshot", s.snapshotDir, DefaultMapName)
			}
			return nil, errors.New("server: Config.Map is required")
		}
		if _, err := s.register(DefaultMapName, cfg.Map, 1, false, nil); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	// When Load restored a default map, it wins over cfg.Map: the caller
	// asked for durability, and the snapshot is the durable state.
	if cfg.Cluster != nil {
		s.cluster = newClusterNode(s, cfg.Cluster)
	}
	s.routes()
	if s.cluster != nil {
		s.cluster.start()
	}
	return s, nil
}

// APIVersion is the current versioned-prefix of the HTTP API. Every endpoint
// is mounted both at its historical path (legacy alias, byte-identical
// responses) and under this prefix, where errors use the structured envelope.
const APIVersion = "v1"

// routeKind classifies per-map endpoints for cluster routing: reads may be
// served by any holder (owner or synced replica) and are proxied to one when
// this node holds no authoritative copy; writes always 307-redirect to the
// owner; local endpoints (node introspection like /stats) never leave the
// node. On single-node servers the classification is inert.
type routeKind int

const (
	routeLocal routeKind = iota
	routeRead
	routeWrite
)

// routes registers every endpoint in both its tenant form and its legacy
// default-map alias, each additionally mounted under /v1.
func (s *Server) routes() {
	s.add("GET", "/healthz", s.handleHealthz)
	s.add("GET", "/maps", s.handleListMaps)
	s.add("POST", "/maps", s.handleCreateMap)
	s.add("GET", "/maps/{map}", s.named(routeRead, s.handleGetMap))
	s.add("DELETE", "/maps/{map}", s.named(routeWrite, s.handleDeleteMap))
	s.add("POST", "/maps/{map}/snapshot", s.named(routeWrite, s.handleSaveMap))
	for pattern, e := range map[string]struct {
		kind routeKind
		h    func(*mapInstance, http.ResponseWriter, *http.Request)
	}{
		"GET /stats":             {routeLocal, s.handleStats},
		"GET /heat":              {routeRead, s.handleHeat},
		"POST /heat/batch":       {routeRead, s.handleHeatBatch},
		"GET /topk":              {routeRead, s.handleTopK},
		"GET /regions":           {routeRead, s.handleRegions},
		"GET /histogram":         {routeRead, s.handleHistogram},
		"GET /optimal":           {routeRead, s.handleOptimal},
		"POST /optimize":         {routeWrite, s.handleOptimize},
		"GET /tiles/{z}/{x}/{y}": {routeRead, s.handleTile},
		"POST /mutations":        {routeWrite, s.handleMutations},
		"POST /clients":          {routeWrite, s.handleAddClients},
		"DELETE /clients":        {routeWrite, s.handleRemoveClients},
		"POST /facilities":       {routeWrite, s.handleAddFacilities},
		"DELETE /facilities":     {routeWrite, s.handleRemoveFacilities},
	} {
		method, path, _ := strings.Cut(pattern, " ")
		s.add(method, path, s.onDefault(e.kind, e.h))
		s.add(method, "/maps/{map}"+path, s.named(e.kind, e.h))
	}
	// The cluster endpoints are always registered — the OpenAPI contract
	// test walks the full route table — and answer not_clustered when the
	// server runs single-node.
	s.add("GET", "/cluster/ping", s.handleClusterPing)
	s.add("GET", "/cluster/status", s.handleClusterStatus)
	s.add("GET", "/cluster/maps", s.handleClusterMaps)
	s.add("GET", "/cluster/maps/{map}/wal", s.handleClusterWAL)
	s.add("GET", "/cluster/maps/{map}/snapshot", s.handleClusterSnapshot)
}

// add registers one endpoint twice: at its legacy path, and under /v1 with
// the response writer wrapped so error responses use the structured envelope.
// Success bodies are identical on both mounts; only the error shape differs,
// which is what lets legacy clients keep parsing {"error": "..."} unchanged.
func (s *Server) add(method, path string, h http.HandlerFunc) {
	s.mux.HandleFunc(method+" "+path, h)
	s.mux.HandleFunc(method+" /"+APIVersion+path, func(w http.ResponseWriter, r *http.Request) {
		h(&v1Writer{ResponseWriter: w}, r)
	})
	s.routeList = append(s.routeList, [2]string{method, path})
}

// Routes returns every registered (method, unversioned path) pair; each is
// also mounted under /v1. The OpenAPI contract test compares this table
// against docs/openapi.yaml in both directions.
func (s *Server) Routes() [][2]string {
	out := make([][2]string, len(s.routeList))
	copy(out, s.routeList)
	return out
}

// v1Writer marks a request as arriving through the /v1 mount; writeError
// checks for it to select the structured error envelope. It adds no behavior
// of its own — headers, status and body pass straight through.
type v1Writer struct {
	http.ResponseWriter
}

// isV1 reports whether the response goes to a /v1 client.
func isV1(w http.ResponseWriter) bool {
	_, ok := w.(*v1Writer)
	return ok
}

// onDefault adapts a per-map handler to the legacy un-prefixed route.
func (s *Server) onDefault(kind routeKind, h func(*mapInstance, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.clusterRoute(DefaultMapName, kind, w, r) {
			return
		}
		h(s.def(), w, r)
	}
}

// named adapts a per-map handler to its /maps/{map}/... route, resolving
// the tenant and answering 404 for unknown names.
func (s *Server) named(kind routeKind, h func(*mapInstance, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("map")
		if s.clusterRoute(name, kind, w, r) {
			return
		}
		inst := s.lookup(name)
		if inst == nil {
			writeError(w, http.StatusNotFound, "no map named %q", name)
			return
		}
		h(inst, w, r)
	}
}

// clusterRoute lets cluster mode intercept a per-map request (redirect,
// proxy or refuse); false means "serve locally". Single-node servers and
// node-local endpoints always serve locally.
func (s *Server) clusterRoute(name string, kind routeKind, w http.ResponseWriter, r *http.Request) bool {
	if s.cluster == nil || kind == routeLocal {
		return false
	}
	return s.cluster.route(name, kind == routeWrite, w, r)
}

// heatRange returns the fixed normalization range for tiles: from the
// smaller of the empty-set heat and the coolest region to the map maximum.
// For the size measure this is simply [0, max], but signed measures (e.g.
// capacity gain) can dip below the empty-set value.
func heatRange(m *heatmap.Map, sum heatmap.Summary) (lo, hi float64) {
	outside := m.Bounds().Expand(1).Corners()
	lo, _ = m.HeatAt(outside[0]) // empty RNN set
	hi = lo
	if sum.Count > 0 {
		lo = math.Min(lo, sum.MinHeat)
		hi = math.Max(hi, sum.MaxHeat)
	}
	return lo, hi
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Bounds returns the data bounds of the currently served default map.
func (s *Server) Bounds() heatmap.Rect { return s.def().state().rd.Bounds() }

// Version returns the default map's current version. It starts at 1 and
// increments with every applied mutation.
func (s *Server) Version() uint64 { return s.def().state().version }

// RenderCalls returns how many tile renders have actually executed for the
// default map across all its versions; warm cache hits do not increment it.
// Exposed for tests and /stats.
func (s *Server) RenderCalls() int64 { return s.def().renders.Load() }

// NumMaps returns the registry size.
func (s *Server) NumMaps() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.maps)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// Machine-readable error codes of the /v1 error envelope. Every /v1 error
// response has the shape {"error": {"code": "<code>", "message": "..."}};
// the code is stable API surface (documented in docs/openapi.yaml), the
// message is free-form prose that may change between releases.
const (
	codeInvalidArgument   = "invalid_argument"
	codeForbidden         = "forbidden"
	codeReadOnly          = "read_only"
	codeNotFound          = "not_found"
	codeConflict          = "conflict"
	codeMapExists         = "map_exists"
	codeImmutableMap      = "immutable_map"
	codeNoRegions         = "no_regions"
	codeResourceExhausted = "resource_exhausted"
	codeRegistryFull      = "registry_full"
	codeQueueFull         = "queue_full"
	codeInternal          = "internal"
	codeUnavailable       = "unavailable"
	codeNotClustered      = "not_clustered"
	codeCompacted         = "compacted"
)

// errorCodeFor maps an HTTP status to its default envelope code; handlers
// with a more specific cause use writeErrorCode directly.
func errorCodeFor(status int) string {
	switch status {
	case http.StatusBadRequest:
		return codeInvalidArgument
	case http.StatusForbidden:
		return codeForbidden
	case http.StatusNotFound:
		return codeNotFound
	case http.StatusConflict:
		return codeConflict
	case http.StatusTooManyRequests:
		return codeResourceExhausted
	case http.StatusServiceUnavailable:
		return codeUnavailable
	default:
		return codeInternal
	}
}

// errorEnvelope is the /v1 error body.
type errorEnvelope struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeErrorCode(w, code, errorCodeFor(code), format, args...)
}

// writeErrorCode writes an error response: on the /v1 mount the structured
// envelope with the given machine code, on legacy paths the historical
// {"error": "<message>"} shape, byte-identical to what pre-/v1 clients parse.
func writeErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if isV1(w) {
		writeJSON(w, status, map[string]errorEnvelope{"error": {Code: code, Message: msg}})
		return
	}
	writeJSON(w, status, map[string]string{"error": msg})
}

// parseFloat parses a finite float query parameter.
func parseFloat(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("query parameter %q is not a finite number: %q", name, raw)
	}
	return v, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.def().state()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"maps":    s.NumMaps(),
		"regions": st.m.NumRegions(),
		"version": st.version,
	})
}

// statsResponse is the GET /stats payload.
type statsResponse struct {
	Name    string `json:"name"`
	Measure string `json:"measure"`
	Version uint64 `json:"version"`
	// APIVersion is the current versioned API prefix ("v1").
	APIVersion string `json:"api_version"`
	Mutable    bool   `json:"mutable"`
	Persisted  bool   `json:"persisted"`
	// SnapshotFormat is the on-disk layout of the map's last loaded or saved
	// snapshot ("v1" or "v2"); empty when the map has never touched disk.
	SnapshotFormat string `json:"snapshot_format,omitempty"`
	// Residency reports where the map's data lives: "heap", "mapped" (served
	// zero-copy off a format-v2 snapshot) or "mapped+heap" (mapped, with heap
	// structures materialized by region enumeration or a mutation).
	Residency     string      `json:"residency"`
	Clients       int         `json:"clients"`
	Facilities    int         `json:"facilities"`
	Regions       int         `json:"regions"`
	MaxHeat       float64     `json:"max_heat"`
	Bounds        rectJSON    `json:"bounds"`
	UptimeSeconds float64     `json:"uptime_seconds"`
	Build         buildStats  `json:"build"`
	Heat          heatSummary `json:"heat"`
	Tiles         tileStats   `json:"tiles"`
	Ingest        ingestStats `json:"ingest"`
	QueryIndex    queryIndex  `json:"query_index"`
	Optimal       optimStats  `json:"optimal"`
	// Cluster reports this node's role for the polled map and the node-wide
	// replication counters (replica lag, ship latency, bootstrap bytes).
	// Omitted on single-node servers.
	Cluster *clusterStats `json:"cluster,omitempty"`
}

// optimStats counts the optimal-location traffic: /optimal queries,
// /optimize runs (dry or committed), and facilities placed by them.
type optimStats struct {
	Queries      int64 `json:"queries"`
	OptimizeRuns int64 `json:"optimize_runs"`
	Placements   int64 `json:"placements"`
}

// queryIndex describes the point-query path serving /heat, /heat/batch and
// tile rasterization: the slab point-location index (O(log n) label lookups)
// or the enclosure fallback (stabbing queries) when the index is disabled or
// declined to build.
type queryIndex struct {
	Path  string `json:"path"` // "slab" or "enclosure"
	Slabs int    `json:"slabs,omitempty"`
	Cells int    `json:"cells,omitempty"`
}

func queryIndexOf(m *heatmap.Map) queryIndex {
	if built, slabs, cells := m.SlabIndexStats(); built {
		return queryIndex{Path: "slab", Slabs: slabs, Cells: cells}
	}
	return queryIndex{Path: "enclosure"}
}

// heatSummary is the heat distribution over the labeled regions.
type heatSummary struct {
	DistinctSets  int     `json:"distinct_sets"`
	MinHeat       float64 `json:"min_heat"`
	MeanHeat      float64 `json:"mean_heat"`
	MaxHeat       float64 `json:"max_heat"`
	MaxRNNSetSize int     `json:"max_rnn_set_size"`
}

// buildStats mirrors the core.Stats counters of the Region Coloring run that
// produced the current map version (a full build or the latest resweep).
type buildStats struct {
	Circles        int     `json:"circles"`
	Events         int     `json:"events"`
	Labelings      int     `json:"labelings"`
	InfluenceCalls int     `json:"influence_calls"`
	MaxRNNSetSize  int     `json:"max_rnn_set_size"`
	DurationMS     float64 `json:"duration_ms"`
}

type tileStats struct {
	Size        int    `json:"size_px"`
	Cached      int    `json:"cached"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Coalesced   uint64 `json:"coalesced"`
	Renders     int64  `json:"renders"`
}

type rectJSON struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

func toRectJSON(r geom.Rect) rectJSON {
	return rectJSON{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

// finiteRect maps the empty rectangle's infinite sentinels to the zero
// rectangle. encoding/json rejects non-finite numbers, and an update that
// perturbs no circles (e.g. a facility opened where it captures no client)
// reports an empty dirty rectangle — without the mapping the mutation
// response would die mid-encode and reach the client as a bodyless 200.
func finiteRect(r geom.Rect) geom.Rect {
	if r.IsEmpty() {
		return geom.Rect{}
	}
	return r
}

func (s *Server) handleStats(inst *mapInstance, w http.ResponseWriter, r *http.Request) {
	st := inst.state()
	cs := st.m.Stats()
	maxHeat, _ := st.m.MaxHeat()
	sum := st.summary
	hits, misses, waited := inst.cache.stats()
	var clusterSection *clusterStats
	if s.cluster != nil {
		clusterSection = s.cluster.statsOf(inst)
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Name:           inst.name,
		Measure:        st.m.MeasureName(),
		Version:        st.version,
		APIVersion:     APIVersion,
		Mutable:        s.mutable,
		Persisted:      s.snapshotDir != "",
		SnapshotFormat: inst.snapshotFormat(),
		Residency:      st.m.Residency(),
		Clients:        st.m.NumClients(),
		Facilities:     st.m.NumFacilities(),
		Regions:        st.m.NumRegions(),
		MaxHeat:        maxHeat,
		Bounds:         toRectJSON(st.rd.Bounds()),
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Build: buildStats{
			Circles:        cs.Circles,
			Events:         cs.Events,
			Labelings:      cs.Labelings,
			InfluenceCalls: cs.InfluenceCalls,
			MaxRNNSetSize:  cs.MaxRNNSetSize,
			DurationMS:     float64(cs.Duration) / float64(time.Millisecond),
		},
		Heat: heatSummary{
			DistinctSets:  sum.DistinctSets,
			MinHeat:       sum.MinHeat,
			MeanHeat:      sum.MeanHeat,
			MaxHeat:       sum.MaxHeat,
			MaxRNNSetSize: sum.MaxRNNSize,
		},
		Tiles: tileStats{
			Size:        s.tileSize,
			Cached:      inst.cache.len(),
			CacheHits:   hits,
			CacheMisses: misses,
			Coalesced:   waited,
			Renders:     inst.renders.Load(),
		},
		Ingest:     s.ingestStatsOf(inst),
		QueryIndex: queryIndexOf(st.m),
		Optimal: optimStats{
			Queries:      inst.optimalQueries.Load(),
			OptimizeRuns: inst.optimizeRuns.Load(),
			Placements:   inst.placements.Load(),
		},
		Cluster: clusterSection,
	})
}

// heatResponse is one influence query result.
type heatResponse struct {
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	Heat float64 `json:"heat"`
	RNN  []int   `json:"rnn"`
}

func nonNil(rnn []int) []int {
	if rnn == nil {
		return []int{}
	}
	return rnn
}

func (s *Server) handleHeat(inst *mapInstance, w http.ResponseWriter, r *http.Request) {
	x, err := parseFloat(r, "x")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	y, err := parseFloat(r, "y")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	heat, rnn := inst.state().m.HeatAt(heatmap.Pt(x, y))
	writeJSON(w, http.StatusOK, heatResponse{X: x, Y: y, Heat: heat, RNN: nonNil(rnn)})
}

// batchRequest is the POST /heat/batch payload.
type batchRequest struct {
	Points []struct {
		X float64 `json:"x"`
		Y float64 `json:"y"`
	} `json:"points"`
}

func (s *Server) handleHeatBatch(inst *mapInstance, w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "request has no points")
		return
	}
	if len(req.Points) > s.maxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d points exceeds the limit of %d", len(req.Points), s.maxBatch)
		return
	}
	ps := make([]heatmap.Point, len(req.Points))
	for i, p := range req.Points {
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			writeError(w, http.StatusBadRequest, "point %d is not finite", i)
			return
		}
		ps[i] = heatmap.Pt(p.X, p.Y)
	}
	heats, rnns := inst.state().m.HeatAtBatch(ps)
	results := make([]heatResponse, len(ps))
	for i := range ps {
		results[i] = heatResponse{X: ps[i].X, Y: ps[i].Y, Heat: heats[i], RNN: nonNil(rnns[i])}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// regionJSON is one labeled region in an API response.
type regionJSON struct {
	Heat  float64   `json:"heat"`
	Point pointJSON `json:"point"`
	RNN   []int     `json:"rnn"`
}

type pointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

func toRegionJSON(rs []heatmap.Region) []regionJSON {
	out := make([]regionJSON, len(rs))
	for i, r := range rs {
		out[i] = regionJSON{
			Heat:  r.Heat,
			Point: pointJSON{X: r.Point.X, Y: r.Point.Y},
			RNN:   nonNil(r.RNN),
		}
	}
	return out
}

func (s *Server) handleTopK(inst *mapInstance, w http.ResponseWriter, r *http.Request) {
	k := 10
	if raw := r.URL.Query().Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "query parameter \"k\" must be a positive integer, got %q", raw)
			return
		}
		k = v
	}
	if k > s.maxRegions {
		k = s.maxRegions
	}
	regions := inst.state().m.TopK(k)
	// count makes the degenerate case explicit: a map with no labeled
	// regions answers count 0 and an empty list, never fabricated regions.
	writeJSON(w, http.StatusOK, map[string]any{
		"k":       k,
		"count":   len(regions),
		"regions": toRegionJSON(regions),
	})
}

func (s *Server) handleRegions(inst *mapInstance, w http.ResponseWriter, r *http.Request) {
	minHeat, err := parseFloat(r, "min")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	regions := inst.state().m.AboveThreshold(minHeat)
	total := len(regions)
	truncated := false
	if total > s.maxRegions {
		regions = regions[:s.maxRegions]
		truncated = true
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"min":       minHeat,
		"total":     total,
		"truncated": truncated,
		"regions":   toRegionJSON(regions),
	})
}

// handleHistogram serves the heat distribution as equal-width bins, the
// data behind a dashboard's heat legend.
func (s *Server) handleHistogram(inst *mapInstance, w http.ResponseWriter, r *http.Request) {
	bins := 20
	if raw := r.URL.Query().Get("bins"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 || v > 1000 {
			writeError(w, http.StatusBadRequest, "query parameter \"bins\" must be an integer in [1, 1000], got %q", raw)
			return
		}
		bins = v
	}
	edges, counts := inst.state().m.HeatHistogram(bins)
	if edges == nil {
		edges = []float64{}
	}
	if counts == nil {
		counts = []int{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"bins":   bins,
		"edges":  edges,
		"counts": counts,
	})
}

func (s *Server) handleTile(inst *mapInstance, w http.ResponseWriter, r *http.Request) {
	yRaw, ok := strings.CutSuffix(r.PathValue("y"), ".png")
	if !ok {
		writeError(w, http.StatusBadRequest, "tile path must end in .png")
		return
	}
	z, errZ := strconv.Atoi(r.PathValue("z"))
	x, errX := strconv.Atoi(r.PathValue("x"))
	y, errY := strconv.Atoi(yRaw)
	if errZ != nil || errX != nil || errY != nil {
		writeError(w, http.StatusBadRequest, "tile coordinates must be integers: /tiles/{z}/{x}/{y}.png")
		return
	}
	st := inst.state()
	if !st.grid.valid(z, x, y) {
		writeError(w, http.StatusNotFound, "tile %d/%d/%d outside the pyramid (zoom 0..%d, 2^z tiles per axis)", z, x, y, MaxZoom)
		return
	}
	key := tileKey{version: st.version, z: z, x: x, y: y}
	t, _, err := inst.cache.get(key, func() (*tileData, error) { return s.renderTile(inst, st, z, x, y) })
	if err != nil {
		writeError(w, http.StatusInternalServerError, "rendering tile: %v", err)
		return
	}
	w.Header().Set("ETag", t.etag)
	if s.mutable {
		// Mutations can invalidate any tile at any time; clients must
		// revalidate (the ETag makes that a cheap 304 while the tile stands).
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Cache-Control", "public, max-age=3600")
	}
	if r.Header.Get("If-None-Match") == t.etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	w.Header().Set("Content-Length", strconv.Itoa(len(t.png)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(t.png)
}

// renderTile rasterizes one tile of the given snapshot, encodes it as PNG
// normalizing against the snapshot's map-wide heat range, and stamps the
// ETag once.
func (s *Server) renderTile(inst *mapInstance, st *mapState, z, x, y int) (*tileData, error) {
	raster, err := st.rd.Render(st.grid.tileBounds(z, x, y), s.tileSize, s.tileSize)
	if err != nil {
		return nil, err
	}
	inst.renders.Add(1)
	var buf bytes.Buffer
	if err := raster.WritePNGScaled(&buf, s.cm, st.heatLo, st.heatHi); err != nil {
		return nil, err
	}
	h := fnv.New64a()
	_, _ = h.Write(buf.Bytes())
	etag := fmt.Sprintf("%q", strconv.FormatUint(h.Sum64(), 16))
	return &tileData{png: buf.Bytes(), etag: etag}, nil
}
