package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"image/png"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"rnnheatmap/heatmap"
	"rnnheatmap/internal/dataset"
	"rnnheatmap/internal/geom"
)

// do sends one request with an optional JSON body.
func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// handMap builds a deterministic map by hand: a hot five-client cluster near
// (10, 10) and lone clients near the other corners, so a mutation in one
// corner dirties only that corner, never the map bounds or the heat range.
func handMap(t *testing.T) *heatmap.Map {
	t.Helper()
	facilities := []heatmap.Point{
		heatmap.Pt(10, 10), heatmap.Pt(90, 10), heatmap.Pt(10, 90), heatmap.Pt(90, 90), heatmap.Pt(50, 50),
	}
	clients := []heatmap.Point{
		// The cluster: all five within distance ~3 of facility 0, so their
		// NN-circles overlap heavily (max heat 5 lives here).
		heatmap.Pt(7, 7), heatmap.Pt(13, 7), heatmap.Pt(7, 13), heatmap.Pt(13, 13), heatmap.Pt(10, 13),
		// Wide corner circles that pin the map bounds well outside any later
		// small addition.
		heatmap.Pt(97, 3), heatmap.Pt(3, 97), heatmap.Pt(95, 95), heatmap.Pt(50, 58),
	}
	m, err := heatmap.Build(heatmap.Config{Clients: clients, Facilities: facilities, Metric: heatmap.L2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

// TestMutationRequiresMutable asserts the read-only default rejects every
// mutation endpoint with 403.
func TestMutationRequiresMutable(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Map: handMap(t)})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][2]string{
		{http.MethodPost, "/clients"},
		{http.MethodDelete, "/clients"},
		{http.MethodPost, "/facilities"},
		{http.MethodDelete, "/facilities"},
	} {
		rec := do(t, s, tc[0], tc[1], `{"points":[{"x":1,"y":1}],"indexes":[0]}`)
		if rec.Code != http.StatusForbidden {
			t.Errorf("%s %s = %d on a read-only server, want 403", tc[0], tc[1], rec.Code)
		}
	}
}

// TestMutationRejectsIndexContextMeasure asserts a per-map immutability:
// a capacity-measure map on a mutable server answers 409 with the reason,
// not a 500 — the case a snapshot-restored capacity map would hit.
func TestMutationRejectsIndexContextMeasure(t *testing.T) {
	t.Parallel()
	clients := []heatmap.Point{heatmap.Pt(1, 1), heatmap.Pt(5, 5), heatmap.Pt(9, 1)}
	facilities := []heatmap.Point{heatmap.Pt(0, 0), heatmap.Pt(10, 10)}
	assignment, err := heatmap.NearestAssignment(clients, facilities, heatmap.L2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := heatmap.Build(heatmap.Config{
		Clients: clients, Facilities: facilities, Metric: heatmap.L2,
		Measure: heatmap.Capacity(assignment, []float64{2, 2}, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Map: m, Mutable: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, s, http.MethodPost, "/clients", `{"points":[{"x":2,"y":2}]}`)
	if rec.Code != http.StatusConflict {
		t.Errorf("mutation of a capacity-measure map = %d, want 409 (body %s)", rec.Code, rec.Body)
	}
	if got := s.Version(); got != 1 {
		t.Errorf("rejected mutation bumped the version to %d", got)
	}
}

// TestMutationBadRequests covers the 4xx paths of the mutation API.
func TestMutationBadRequests(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Map: handMap(t), Mutable: true, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"post malformed", http.MethodPost, "/clients", "{", http.StatusBadRequest},
		{"post no points", http.MethodPost, "/clients", `{"points":[]}`, http.StatusBadRequest},
		{"post with indexes", http.MethodPost, "/clients", `{"points":[{"x":1,"y":1}],"indexes":[0]}`, http.StatusBadRequest},
		{"post over batch", http.MethodPost, "/clients", `{"points":[{"x":1,"y":1},{"x":2,"y":2},{"x":3,"y":3},{"x":4,"y":4},{"x":5,"y":5}]}`, http.StatusBadRequest},
		{"delete no indexes", http.MethodDelete, "/clients", `{"indexes":[]}`, http.StatusBadRequest},
		{"delete with points", http.MethodDelete, "/clients", `{"indexes":[0],"points":[{"x":1,"y":1}]}`, http.StatusBadRequest},
		{"delete out of range", http.MethodDelete, "/clients", `{"indexes":[99]}`, http.StatusBadRequest},
		{"delete facility out of range", http.MethodDelete, "/facilities", `{"indexes":[-1]}`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/facilities", `{"pts":[{"x":1,"y":1}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, s, tc.method, tc.path, tc.body)
			if rec.Code != tc.want {
				t.Errorf("%s %s = %d, want %d (body %s)", tc.method, tc.path, rec.Code, tc.want, rec.Body)
			}
		})
	}
	if got := s.Version(); got != 1 {
		t.Errorf("rejected mutations bumped the version to %d", got)
	}
}

// TestMutationDirtyRectCache is the dirty-rect invalidation contract: after a
// localized update, tiles outside the dirty rectangle survive the swap (same
// bytes, same ETag, no re-render) while tiles covering the update re-render.
func TestMutationDirtyRectCache(t *testing.T) {
	t.Parallel()
	s, err := New(Config{Map: handMap(t), Mutable: true, TileSize: 32, TileCacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	st := s.def().state()

	// Pick, at zoom 2, the tile containing the hot cluster (far from the
	// update) and the tile containing the update site near (90, 90).
	farTile, nearTile := "", ""
	update := heatmap.Pt(91, 91)
	cluster := heatmap.Pt(10, 10)
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			b := st.grid.tileBounds(2, x, y)
			if b.Contains(cluster) && farTile == "" {
				farTile = fmt.Sprintf("/tiles/2/%d/%d.png", x, y)
			}
			if b.Contains(update) && nearTile == "" {
				nearTile = fmt.Sprintf("/tiles/2/%d/%d.png", x, y)
			}
		}
	}
	if farTile == "" || nearTile == "" || farTile == nearTile {
		t.Fatalf("bad tile choice: far %q near %q", farTile, nearTile)
	}

	farCold := do(t, s, http.MethodGet, farTile, "")
	nearCold := do(t, s, http.MethodGet, nearTile, "")
	if farCold.Code != 200 || nearCold.Code != 200 {
		t.Fatalf("cold tiles: %d, %d", farCold.Code, nearCold.Code)
	}
	if got := s.RenderCalls(); got != 2 {
		t.Fatalf("after two cold tiles RenderCalls = %d", got)
	}

	// Add one client near facility (90, 90): a small NN-circle wholly inside
	// the old bounds, far cooler than the cluster, so neither the tile grid
	// nor the normalization range moves.
	rec := do(t, s, http.MethodPost, "/clients", `{"points":[{"x":91,"y":91}]}`)
	if rec.Code != 200 {
		t.Fatalf("POST /clients = %d (body %s)", rec.Code, rec.Body)
	}
	var resp mutateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding mutation response: %v", err)
	}
	if resp.Version != 2 || resp.Clients != 10 {
		t.Fatalf("mutation response %+v, want version 2 and 10 clients", resp)
	}
	if resp.Rebuilt {
		t.Fatalf("a one-client corner update should not trigger a full rebuild: %+v", resp)
	}
	if resp.EventsReswept >= resp.EventsTotal {
		t.Fatalf("localized update reswept everything: %+v", resp)
	}
	dirty := geom.Rect{MinX: resp.DirtyRect.MinX, MinY: resp.DirtyRect.MinY, MaxX: resp.DirtyRect.MaxX, MaxY: resp.DirtyRect.MaxY}
	if !dirty.Contains(update) || dirty.Contains(cluster) {
		t.Fatalf("dirty rect %v should cover the update site but not the cluster", dirty)
	}
	if ns := s.def().state(); ns.grid != st.grid || ns.heatLo != st.heatLo || ns.heatHi != st.heatHi {
		t.Fatalf("grid or heat range moved; the retention assertions below would be vacuous")
	}

	// The far tile survived the swap: identical bytes, no new render.
	farWarm := do(t, s, http.MethodGet, farTile, "")
	if farWarm.Code != 200 || !bytes.Equal(farWarm.Body.Bytes(), farCold.Body.Bytes()) {
		t.Fatalf("far tile changed across an unrelated update")
	}
	if got := s.RenderCalls(); got != 2 {
		t.Errorf("far tile re-rendered after unrelated update: RenderCalls = %d", got)
	}
	req := httptest.NewRequest(http.MethodGet, farTile, nil)
	req.Header.Set("If-None-Match", farCold.Header().Get("ETag"))
	cond := httptest.NewRecorder()
	s.ServeHTTP(cond, req)
	if cond.Code != http.StatusNotModified {
		t.Errorf("conditional far tile = %d, want 304", cond.Code)
	}

	// The near tile was invalidated: it re-renders and its bytes change.
	nearWarm := do(t, s, http.MethodGet, nearTile, "")
	if nearWarm.Code != 200 {
		t.Fatalf("near tile = %d", nearWarm.Code)
	}
	if got := s.RenderCalls(); got != 3 {
		t.Errorf("near tile should re-render: RenderCalls = %d, want 3", got)
	}
	if bytes.Equal(nearWarm.Body.Bytes(), nearCold.Body.Bytes()) {
		t.Errorf("near tile bytes unchanged although a client was added inside it")
	}
}

// TestMutationMatchesRebuildThroughAPI asserts the served answers after a
// sequence of mutations equal a server built from scratch on the final sets.
func TestMutationMatchesRebuildThroughAPI(t *testing.T) {
	t.Parallel()
	ds := dataset.Uniform(400, geom.Rect{MaxX: 1000, MaxY: 1000}, 99)
	clients, facilities := ds.SampleClientsFacilities(120, 40, 3)
	build := func(cs, fs []heatmap.Point) *Server {
		m, err := heatmap.Build(heatmap.Config{Clients: cs, Facilities: fs, Metric: heatmap.L2})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		s, err := New(Config{Map: m, Mutable: true, TileSize: 32})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s
	}
	s := build(clients, facilities)

	// Mirror the documented swap-remove semantics while mutating via HTTP.
	cs := append([]heatmap.Point(nil), clients...)
	fs := append([]heatmap.Point(nil), facilities...)
	if rec := do(t, s, http.MethodPost, "/clients", `{"points":[{"x":250,"y":250},{"x":700,"y":300}]}`); rec.Code != 200 {
		t.Fatalf("add clients: %d %s", rec.Code, rec.Body)
	}
	cs = append(cs, heatmap.Pt(250, 250), heatmap.Pt(700, 300))
	if rec := do(t, s, http.MethodDelete, "/clients", `{"indexes":[5]}`); rec.Code != 200 {
		t.Fatalf("remove client: %d %s", rec.Code, rec.Body)
	}
	cs[5] = cs[len(cs)-1]
	cs = cs[:len(cs)-1]
	if rec := do(t, s, http.MethodPost, "/facilities", `{"points":[{"x":500,"y":480}]}`); rec.Code != 200 {
		t.Fatalf("add facility: %d %s", rec.Code, rec.Body)
	}
	fs = append(fs, heatmap.Pt(500, 480))
	if rec := do(t, s, http.MethodDelete, "/facilities", `{"indexes":[2]}`); rec.Code != 200 {
		t.Fatalf("remove facility: %d %s", rec.Code, rec.Body)
	}
	fs[2] = fs[len(fs)-1]
	fs = fs[:len(fs)-1]

	if got := s.Version(); got != 5 {
		t.Fatalf("version = %d after 4 mutations, want 5", got)
	}
	fresh := build(cs, fs)
	for _, path := range []string{
		"/tiles/0/0/0.png", "/tiles/2/1/1.png", "/tiles/3/5/2.png",
		"/heat?x=500&y=500", "/topk?k=5", "/histogram?bins=10",
	} {
		mu := do(t, s, http.MethodGet, path, "")
		fr := do(t, fresh, http.MethodGet, path, "")
		if mu.Code != 200 || fr.Code != 200 {
			t.Fatalf("GET %s: %d (mutated) vs %d (fresh)", path, mu.Code, fr.Code)
		}
		if !bytes.Equal(mu.Body.Bytes(), fr.Body.Bytes()) {
			t.Errorf("GET %s differs between the mutated server and a from-scratch one", path)
		}
	}
}

// TestConcurrentReadsAndWrites hammers a mutable server with interleaved
// tile, batch-heat and stats reads while a writer applies updates: every
// response must be well-formed (parseable PNG / JSON), the reported version
// must increase monotonically, and the run must be race-clean under -race.
func TestConcurrentReadsAndWrites(t *testing.T) {
	t.Parallel()
	ds := dataset.Uniform(300, geom.Rect{MaxX: 1000, MaxY: 1000}, 7)
	clients, facilities := ds.SampleClientsFacilities(90, 30, 11)
	m, err := heatmap.Build(heatmap.Config{Clients: clients, Facilities: facilities, Metric: heatmap.LInf})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Map: m, Mutable: true, TileSize: 16, TileCacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	writes, readers, reads := 24, 4, 60
	if testing.Short() {
		writes, readers, reads = 8, 2, 20
	}

	var failed atomic.Bool
	fail := func(format string, args ...any) {
		if failed.CompareAndSwap(false, true) {
			t.Errorf(format, args...)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: alternate adding a client at a random in-bounds point and
	// removing client 0 (always valid; the set size stays within ±1).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		rng := rand.New(rand.NewSource(123))
		for i := 0; i < writes; i++ {
			var resp *http.Response
			var err error
			if i%2 == 0 {
				body := fmt.Sprintf(`{"points":[{"x":%f,"y":%f}]}`, rng.Float64()*1000, rng.Float64()*1000)
				req, _ := http.NewRequest(http.MethodPost, ts.URL+"/clients", strings.NewReader(body))
				resp, err = ts.Client().Do(req)
			} else {
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/clients", strings.NewReader(`{"indexes":[0]}`))
				resp, err = ts.Client().Do(req)
			}
			if err != nil {
				fail("write %d: %v", i, err)
				return
			}
			var mr mutateResponse
			if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
				fail("write %d: decoding: %v", i, err)
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				fail("write %d: status %d", i, resp.StatusCode)
				return
			}
			if want := uint64(i + 2); mr.Version != want {
				fail("write %d: version %d, want %d", i, mr.Version, want)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			lastVersion := uint64(0)
			for i := 0; i < reads; i++ {
				select {
				case <-stop:
					if i > 0 {
						return
					}
				default:
				}
				switch i % 3 {
				case 0: // tile: must always be a parseable PNG
					z := rng.Intn(3)
					path := fmt.Sprintf("/tiles/%d/%d/%d.png", z, rng.Intn(1<<z), rng.Intn(1<<z))
					resp, err := ts.Client().Get(ts.URL + path)
					if err != nil {
						fail("reader %d: %v", r, err)
						return
					}
					if resp.StatusCode != 200 {
						fail("reader %d: GET %s = %d", r, path, resp.StatusCode)
					} else if _, err := png.Decode(resp.Body); err != nil {
						fail("reader %d: torn tile %s: %v", r, path, err)
					}
					resp.Body.Close()
				case 1: // batch heat
					body := fmt.Sprintf(`{"points":[{"x":%f,"y":%f},{"x":%f,"y":%f}]}`,
						rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*1000)
					resp, err := ts.Client().Post(ts.URL+"/heat/batch", "application/json", strings.NewReader(body))
					if err != nil {
						fail("reader %d: %v", r, err)
						return
					}
					var out struct {
						Results []heatResponse `json:"results"`
					}
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || len(out.Results) != 2 {
						fail("reader %d: torn batch response: %v", r, err)
					}
					resp.Body.Close()
				default: // stats: version must be monotone from any one reader's view
					resp, err := ts.Client().Get(ts.URL + "/stats")
					if err != nil {
						fail("reader %d: %v", r, err)
						return
					}
					var stats statsResponse
					if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
						fail("reader %d: decoding stats: %v", r, err)
					}
					resp.Body.Close()
					if stats.Version < lastVersion {
						fail("reader %d: version went backwards: %d after %d", r, stats.Version, lastVersion)
					}
					lastVersion = stats.Version
				}
			}
		}(r)
	}
	wg.Wait()
	if got, want := s.Version(), uint64(writes+1); got != want {
		t.Errorf("final version = %d, want %d", got, want)
	}
}
